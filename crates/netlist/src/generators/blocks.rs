//! Composable hardware blocks used by the benchmark generators.
//!
//! Each builder appends gates to an existing [`Netlist`] and returns the
//! output signal ids, so generators can stitch real arithmetic and control
//! structures together. All builders are pure functions of their inputs and
//! the `prefix` (used for unique instance names).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

/// Returns `(sum, carry)` of a full adder over `a`, `b`, `cin`.
pub fn full_adder(
    n: &mut Netlist,
    prefix: &str,
    a: GateId,
    b: GateId,
    cin: GateId,
) -> (GateId, GateId) {
    let axb = n
        .add_gate(GateKind::Xor, format!("{prefix}_axb"), &[a, b])
        .expect("valid fanin");
    let sum = n
        .add_gate(GateKind::Xor, format!("{prefix}_sum"), &[axb, cin])
        .expect("valid fanin");
    let t1 = n
        .add_gate(GateKind::And, format!("{prefix}_t1"), &[a, b])
        .expect("valid fanin");
    let t2 = n
        .add_gate(GateKind::And, format!("{prefix}_t2"), &[axb, cin])
        .expect("valid fanin");
    let cout = n
        .add_gate(GateKind::Or, format!("{prefix}_cout"), &[t1, t2])
        .expect("valid fanin");
    (sum, cout)
}

/// Ripple-carry adder; returns `(sum_bits, carry_out)`.
///
/// # Panics
///
/// Panics if `a` and `b` have different widths or are empty.
pub fn ripple_adder(
    n: &mut Netlist,
    prefix: &str,
    a: &[GateId],
    b: &[GateId],
    cin: Option<GateId>,
) -> (Vec<GateId>, GateId) {
    assert_eq!(a.len(), b.len(), "adder operand widths differ");
    assert!(!a.is_empty(), "adder width must be nonzero");
    let mut carry = match cin {
        Some(c) => c,
        None => n
            .add_gate(GateKind::Const0, format!("{prefix}_c0"), &[])
            .expect("const"),
    };
    let mut sums = Vec::with_capacity(a.len());
    for (i, (&ai, &bi)) in a.iter().zip(b).enumerate() {
        let (s, c) = full_adder(n, &format!("{prefix}_fa{i}"), ai, bi, carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// Two's-complement subtractor `a - b`; returns `(diff_bits, borrow_out)`.
pub fn ripple_subtractor(
    n: &mut Netlist,
    prefix: &str,
    a: &[GateId],
    b: &[GateId],
) -> (Vec<GateId>, GateId) {
    assert_eq!(a.len(), b.len());
    let nb: Vec<GateId> = b
        .iter()
        .enumerate()
        .map(|(i, &bi)| {
            n.add_gate(GateKind::Not, format!("{prefix}_nb{i}"), &[bi])
                .expect("valid fanin")
        })
        .collect();
    let one = n
        .add_gate(GateKind::Const1, format!("{prefix}_one"), &[])
        .expect("const");
    let (diff, cout) = ripple_adder(n, prefix, a, &nb, Some(one));
    (diff, cout)
}

/// Unsigned array multiplier; returns the `2 * width` product bits.
pub fn array_multiplier(n: &mut Netlist, prefix: &str, a: &[GateId], b: &[GateId]) -> Vec<GateId> {
    assert_eq!(a.len(), b.len());
    let w = a.len();
    // Partial products.
    let mut rows: Vec<Vec<GateId>> = Vec::with_capacity(w);
    for (j, &bj) in b.iter().enumerate() {
        let row = a
            .iter()
            .enumerate()
            .map(|(i, &ai)| {
                n.add_gate(GateKind::And, format!("{prefix}_pp{j}_{i}"), &[ai, bj])
                    .expect("valid fanin")
            })
            .collect();
        rows.push(row);
    }
    // Accumulate rows with shifted ripple adders.
    let zero = n
        .add_gate(GateKind::Const0, format!("{prefix}_z"), &[])
        .expect("const");
    let mut acc: Vec<GateId> = vec![zero; 2 * w];
    for (i, bit) in rows[0].iter().enumerate() {
        acc[i] = *bit;
    }
    for (j, row) in rows.iter().enumerate().skip(1) {
        // Add row << j into acc[j .. j+w+1].
        let addend: Vec<GateId> = row.clone();
        let target: Vec<GateId> = acc[j..j + w].to_vec();
        let (sum, cout) = ripple_adder(n, &format!("{prefix}_r{j}"), &target, &addend, None);
        for (k, s) in sum.into_iter().enumerate() {
            acc[j + k] = s;
        }
        acc[j + w] = cout;
    }
    acc
}

/// Sum-of-products S-box: `truth[k]` holds the output bits for input value
/// `k` (bit `o` of `truth[k]` = output `o`). Returns one id per output bit.
///
/// This is how a logic synthesizer would realize a small LUT: a decoder of
/// minterms feeding OR planes — exactly the structure of synthesized cipher
/// S-boxes.
///
/// # Panics
///
/// Panics if `inputs` is empty, longer than 8, or `truth` length is not
/// `2^inputs.len()`.
pub fn sbox(
    n: &mut Netlist,
    prefix: &str,
    inputs: &[GateId],
    truth: &[u16],
    out_bits: usize,
) -> Vec<GateId> {
    let k = inputs.len();
    assert!((1..=8).contains(&k), "sbox supports 1..=8 inputs");
    assert_eq!(truth.len(), 1 << k, "truth table size mismatch");
    // Input inverters.
    let inv: Vec<GateId> = inputs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            n.add_gate(GateKind::Not, format!("{prefix}_inv{i}"), &[x])
                .expect("valid fanin")
        })
        .collect();
    // Minterm AND planes (only the minterms actually used by some output).
    let mut minterm: Vec<Option<GateId>> = vec![None; 1 << k];
    let mut get_minterm = |n: &mut Netlist, m: usize| -> GateId {
        if let Some(g) = minterm[m] {
            return g;
        }
        let lits: Vec<GateId> = (0..k)
            .map(|i| if (m >> i) & 1 == 1 { inputs[i] } else { inv[i] })
            .collect();
        let g = if lits.len() == 1 {
            lits[0]
        } else {
            n.add_gate(GateKind::And, format!("{prefix}_m{m}"), &lits)
                .expect("valid fanin")
        };
        minterm[m] = Some(g);
        g
    };
    let mut outs = Vec::with_capacity(out_bits);
    for o in 0..out_bits {
        let terms: Vec<GateId> = (0..1usize << k)
            .filter(|&m| (truth[m] >> o) & 1 == 1)
            .map(|m| get_minterm(n, m))
            .collect();
        let out = match terms.len() {
            0 => n
                .add_gate(GateKind::Const0, format!("{prefix}_o{o}z"), &[])
                .expect("const"),
            1 => terms[0],
            _ => n
                .add_gate(GateKind::Or, format!("{prefix}_o{o}"), &terms)
                .expect("valid fanin"),
        };
        outs.push(out);
    }
    outs
}

/// The AES S-box lookup table (FIPS-197).
pub const AES_SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The real 8-bit AES S-box as sum-of-products logic; returns the 8 output
/// bits (LSB first).
///
/// # Panics
///
/// Panics if `inputs` is not exactly 8 bits wide.
pub fn aes_sbox(n: &mut Netlist, prefix: &str, inputs: &[GateId]) -> Vec<GateId> {
    assert_eq!(inputs.len(), 8, "AES S-box takes an 8-bit input");
    let truth: Vec<u16> = AES_SBOX.iter().map(|&v| u16::from(v)).collect();
    sbox(n, prefix, inputs, &truth, 8)
}

/// XORs two equal-width buses bitwise.
pub fn xor_bus(n: &mut Netlist, prefix: &str, a: &[GateId], b: &[GateId]) -> Vec<GateId> {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .enumerate()
        .map(|(i, (&x, &y))| {
            n.add_gate(GateKind::Xor, format!("{prefix}_x{i}"), &[x, y])
                .expect("valid fanin")
        })
        .collect()
}

/// Balanced parity (XOR) tree over `bits`; returns the single parity bit.
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn parity_tree(n: &mut Netlist, prefix: &str, bits: &[GateId]) -> GateId {
    assert!(!bits.is_empty());
    let mut level: Vec<GateId> = bits.to_vec();
    let mut c = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let g = n
                    .add_gate(GateKind::Xor, format!("{prefix}_p{c}"), pair)
                    .expect("valid fanin");
                c += 1;
                next.push(g);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// 3-input majority gate: `ab | bc | ac`.
pub fn majority3(n: &mut Netlist, prefix: &str, a: GateId, b: GateId, c: GateId) -> GateId {
    let ab = n
        .add_gate(GateKind::And, format!("{prefix}_ab"), &[a, b])
        .expect("valid fanin");
    let bc = n
        .add_gate(GateKind::And, format!("{prefix}_bc"), &[b, c])
        .expect("valid fanin");
    let ac = n
        .add_gate(GateKind::And, format!("{prefix}_ac"), &[a, c])
        .expect("valid fanin");
    n.add_gate(GateKind::Or, format!("{prefix}_maj"), &[ab, bc, ac])
        .expect("valid fanin")
}

/// Majority vote over an odd number of inputs, built as a tree of
/// [`majority3`] reductions (the structure of the EPFL `voter` benchmark).
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn majority_tree(n: &mut Netlist, prefix: &str, bits: &[GateId]) -> GateId {
    assert!(!bits.is_empty());
    let mut level: Vec<GateId> = bits.to_vec();
    let mut c = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 3 + 1);
        let mut chunks = level.chunks(3);
        for group in &mut chunks {
            match group {
                [a, b, cc] => {
                    let g = majority3(n, &format!("{prefix}_m{c}"), *a, *b, *cc);
                    c += 1;
                    next.push(g);
                }
                [a, b] => {
                    let g = n
                        .add_gate(GateKind::And, format!("{prefix}_and{c}"), &[*a, *b])
                        .expect("valid fanin");
                    c += 1;
                    next.push(g);
                }
                [a] => next.push(*a),
                _ => unreachable!(),
            }
        }
        level = next;
    }
    level[0]
}

/// Priority arbiter: for request lines `reqs`, grant `i` is high iff `reqs[i]`
/// is high and no lower-indexed request is. Returns the grant lines.
pub fn priority_arbiter(n: &mut Netlist, prefix: &str, reqs: &[GateId]) -> Vec<GateId> {
    assert!(!reqs.is_empty());
    let mut grants = Vec::with_capacity(reqs.len());
    grants.push(reqs[0]);
    // blocked[i] = OR of reqs[0..=i]
    let mut blocked = reqs[0];
    for (i, &r) in reqs.iter().enumerate().skip(1) {
        let nb = n
            .add_gate(GateKind::Not, format!("{prefix}_nb{i}"), &[blocked])
            .expect("valid fanin");
        let g = n
            .add_gate(GateKind::And, format!("{prefix}_g{i}"), &[r, nb])
            .expect("valid fanin");
        grants.push(g);
        blocked = n
            .add_gate(GateKind::Or, format!("{prefix}_b{i}"), &[blocked, r])
            .expect("valid fanin");
    }
    grants
}

/// `2^sel.len()`-output one-hot decoder.
///
/// # Panics
///
/// Panics if `sel` is empty or wider than 8 bits.
pub fn decoder(n: &mut Netlist, prefix: &str, sel: &[GateId]) -> Vec<GateId> {
    let k = sel.len();
    assert!((1..=8).contains(&k));
    let inv: Vec<GateId> = sel
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            n.add_gate(GateKind::Not, format!("{prefix}_i{i}"), &[s])
                .expect("valid fanin")
        })
        .collect();
    (0..1usize << k)
        .map(|m| {
            let lits: Vec<GateId> = (0..k)
                .map(|i| if (m >> i) & 1 == 1 { sel[i] } else { inv[i] })
                .collect();
            if lits.len() == 1 {
                lits[0]
            } else {
                n.add_gate(GateKind::And, format!("{prefix}_d{m}"), &lits)
                    .expect("valid fanin")
            }
        })
        .collect()
}

/// Word-level 2:1 mux: `sel ? a : b` per bit.
pub fn mux_bus(
    n: &mut Netlist,
    prefix: &str,
    sel: GateId,
    a: &[GateId],
    b: &[GateId],
) -> Vec<GateId> {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .enumerate()
        .map(|(i, (&x, &y))| {
            n.add_gate(GateKind::Mux, format!("{prefix}_m{i}"), &[sel, x, y])
                .expect("valid fanin")
        })
        .collect()
}

/// Equality comparator over two buses; returns one bit.
pub fn equals(n: &mut Netlist, prefix: &str, a: &[GateId], b: &[GateId]) -> GateId {
    assert_eq!(a.len(), b.len());
    let xn: Vec<GateId> = a
        .iter()
        .zip(b)
        .enumerate()
        .map(|(i, (&x, &y))| {
            n.add_gate(GateKind::Xnor, format!("{prefix}_e{i}"), &[x, y])
                .expect("valid fanin")
        })
        .collect();
    if xn.len() == 1 {
        xn[0]
    } else {
        n.add_gate(GateKind::And, format!("{prefix}_all"), &xn)
            .expect("valid fanin")
    }
}

/// Fibonacci LFSR register bank of `width` bits with feedback from `taps`.
/// Returns the state bits (DFF outputs). The LFSR free-runs from whatever
/// reset state the simulator assigns; `seed_in` is XORed into the feedback so
/// the state depends on a data input.
pub fn lfsr(
    n: &mut Netlist,
    prefix: &str,
    width: usize,
    taps: &[usize],
    seed_in: GateId,
) -> Vec<GateId> {
    assert!(width >= 2);
    let state: Vec<GateId> = (0..width)
        .map(|i| n.add_dff_placeholder(format!("{prefix}_s{i}")))
        .collect();
    let tap_bits: Vec<GateId> = taps.iter().map(|&t| state[t % width]).collect();
    let mut fb = parity_tree(n, &format!("{prefix}_fb"), &tap_bits);
    fb = n
        .add_gate(GateKind::Xor, format!("{prefix}_fbx"), &[fb, seed_in])
        .expect("valid fanin");
    n.connect_dff(state[0], fb);
    for i in 1..width {
        n.connect_dff(state[i], state[i - 1]);
    }
    state
}

/// Random cloud of 2-input gates over `signals`, adding `count` gates with
/// kinds drawn from a realistic synthesis mix. Returns the last few outputs
/// (the "live" frontier) so callers can connect them onward.
pub fn random_cloud(
    n: &mut Netlist,
    prefix: &str,
    signals: &[GateId],
    count: usize,
    seed: u64,
) -> Vec<GateId> {
    assert!(signals.len() >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    // Frequency-weighted kind mix echoing post-synthesis netlists.
    const MIX: [(GateKind, u32); 7] = [
        (GateKind::Nand, 28),
        (GateKind::Nor, 14),
        (GateKind::And, 16),
        (GateKind::Or, 12),
        (GateKind::Xor, 12),
        (GateKind::Xnor, 6),
        (GateKind::Not, 12),
    ];
    let total: u32 = MIX.iter().map(|(_, w)| w).sum();
    let mut pool: Vec<GateId> = signals.to_vec();
    let mut frontier = Vec::new();
    for i in 0..count {
        let mut pick = rng.gen_range(0..total);
        let kind = MIX
            .iter()
            .find(|(_, w)| {
                if pick < *w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .map(|(k, _)| *k)
            .expect("weighted pick in range");
        let a = pool[rng.gen_range(0..pool.len())];
        let g = if kind == GateKind::Not {
            n.add_gate(kind, format!("{prefix}_c{i}"), &[a])
                .expect("valid fanin")
        } else {
            let mut b = pool[rng.gen_range(0..pool.len())];
            if b == a {
                // one re-roll to avoid degenerate g(a, a) gates dominating
                b = pool[rng.gen_range(0..pool.len())];
            }
            n.add_gate(kind, format!("{prefix}_c{i}"), &[a, b])
                .expect("valid fanin")
        };
        pool.push(g);
        frontier.push(g);
        if frontier.len() > 16 {
            frontier.remove(0);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(name: &str, inputs: usize) -> (Netlist, Vec<GateId>) {
        let mut n = Netlist::new(name);
        let ins = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
        (n, ins)
    }

    #[test]
    fn ripple_adder_structure() {
        let (mut n, ins) = fresh("add", 8);
        let (sum, cout) = ripple_adder(&mut n, "a", &ins[0..4], &ins[4..8], None);
        assert_eq!(sum.len(), 4);
        n.add_output("c", cout).unwrap();
        for (i, s) in sum.iter().enumerate() {
            n.add_output(format!("s{i}"), *s).unwrap();
        }
        n.validate().unwrap();
        // 4 full adders × 5 gates + const0
        assert_eq!(n.stats().cells, 20);
    }

    #[test]
    fn multiplier_structure() {
        let (mut n, ins) = fresh("mul", 8);
        let p = array_multiplier(&mut n, "m", &ins[0..4], &ins[4..8]);
        assert_eq!(p.len(), 8);
        for (i, b) in p.iter().enumerate() {
            n.add_output(format!("p{i}"), *b).unwrap();
        }
        n.validate().unwrap();
        assert!(n.stats().cells >= 16 + 3 * 20);
    }

    #[test]
    fn sbox_structure() {
        let (mut n, ins) = fresh("sb", 4);
        // 4-in/4-out bijective-ish toy table.
        let truth: Vec<u16> = (0..16).map(|i| ((i * 7 + 3) % 16) as u16).collect();
        let outs = sbox(&mut n, "s", &ins, &truth, 4);
        assert_eq!(outs.len(), 4);
        for (i, o) in outs.iter().enumerate() {
            n.add_output(format!("o{i}"), *o).unwrap();
        }
        n.validate().unwrap();
    }

    #[test]
    fn aes_sbox_matches_fips_table() {
        let (mut n, ins) = fresh("aes", 8);
        let outs = aes_sbox(&mut n, "s", &ins);
        for (i, o) in outs.iter().enumerate() {
            n.add_output(format!("o{i}"), *o).unwrap();
        }
        n.validate().unwrap();
        // Exhaustive functional check via topological evaluation.
        let order = n.topo_order().unwrap();
        for x in 0u32..256 {
            let mut v = vec![false; n.gate_count()];
            for (k, &id) in n.data_inputs().iter().enumerate() {
                v[id.index()] = x >> k & 1 == 1;
            }
            for &id in &order {
                let g = n.gate(id);
                let vals = || g.fanin().iter().map(|f| v[f.index()]);
                v[id.index()] = match g.kind() {
                    crate::GateKind::Input => continue,
                    crate::GateKind::Const0 => false,
                    crate::GateKind::And => vals().all(|b| b),
                    crate::GateKind::Or => vals().any(|b| b),
                    crate::GateKind::Not => !v[g.fanin()[0].index()],
                    other => unreachable!("unexpected {other} in sbox logic"),
                };
            }
            let got = outs
                .iter()
                .enumerate()
                .fold(0u32, |acc, (k, o)| acc | (u32::from(v[o.index()]) << k));
            assert_eq!(got, u32::from(AES_SBOX[x as usize]), "S[{x:#04x}]");
        }
    }

    #[test]
    fn arbiter_grants_are_one_hot_shape() {
        let (mut n, ins) = fresh("arb", 6);
        let g = priority_arbiter(&mut n, "p", &ins);
        assert_eq!(g.len(), 6);
        for (i, gi) in g.iter().enumerate() {
            n.add_output(format!("g{i}"), *gi).unwrap();
        }
        n.validate().unwrap();
    }

    #[test]
    fn decoder_width() {
        let (mut n, ins) = fresh("dec", 3);
        let outs = decoder(&mut n, "d", &ins);
        assert_eq!(outs.len(), 8);
        n.validate().unwrap();
    }

    #[test]
    fn lfsr_is_sequential_and_valid() {
        let (mut n, ins) = fresh("l", 1);
        let st = lfsr(&mut n, "r", 8, &[0, 3, 5], ins[0]);
        n.add_output("o", st[7]).unwrap();
        n.validate().unwrap();
        assert_eq!(n.stats().flops, 8);
    }

    #[test]
    fn majority_tree_reduces_to_one() {
        let (mut n, ins) = fresh("v", 9);
        let m = majority_tree(&mut n, "t", &ins);
        n.add_output("y", m).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn random_cloud_is_deterministic() {
        let (mut n1, ins1) = fresh("c1", 4);
        random_cloud(&mut n1, "c", &ins1, 50, 7);
        let (mut n2, ins2) = fresh("c1", 4);
        random_cloud(&mut n2, "c", &ins2, 50, 7);
        assert_eq!(n1, n2);
    }

    #[test]
    fn equals_and_mux_bus() {
        let (mut n, ins) = fresh("e", 9);
        let e = equals(&mut n, "eq", &ins[0..4], &ins[4..8]);
        let m = mux_bus(&mut n, "mx", e, &ins[0..4], &ins[4..8]);
        assert_eq!(m.len(), 4);
        n.add_output("e", e).unwrap();
        n.validate().unwrap();
    }

    #[test]
    fn parity_tree_single_bit_passthrough() {
        let (mut n, ins) = fresh("p", 1);
        let p = parity_tree(&mut n, "t", &ins);
        assert_eq!(p, ins[0]);
    }
}
