//! ISCAS-85-like training designs.
//!
//! The paper trains on six ISCAS-85 benchmarks synthesized with Synopsys DC.
//! The real netlists are unavailable offline, so we generate six small
//! designs with the documented functional flavour and comparable gate counts
//! of the classic suite (c432 27-channel interrupt controller, c499/c1355
//! ECC, c880 ALU, c1908 ECC, c2670 ALU+control), built from real arithmetic
//! and control blocks.

use crate::gate::GateId;
use crate::netlist::Netlist;

use super::blocks;

/// A named training design generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrainingDesign {
    /// ISCAS-85-like name, e.g. `"c432"`.
    pub name: &'static str,
    /// Approximate cell count at `scale = 1`.
    pub approx_cells: usize,
}

/// The six training designs used by the paper (§V-A).
pub const TRAINING: [TrainingDesign; 6] = [
    TrainingDesign {
        name: "c432",
        approx_cells: 190,
    },
    TrainingDesign {
        name: "c499",
        approx_cells: 260,
    },
    TrainingDesign {
        name: "c880",
        approx_cells: 420,
    },
    TrainingDesign {
        name: "c1355",
        approx_cells: 590,
    },
    TrainingDesign {
        name: "c1908",
        approx_cells: 740,
    },
    TrainingDesign {
        name: "c2670",
        approx_cells: 980,
    },
];

/// The classic 6-gate ISCAS-85 `c17` netlist, reproduced exactly — handy as a
/// tiny ground-truth design for tests.
pub fn iscas_c17() -> Netlist {
    let src = "
module c17 (g1, g2, g3, g6, g7, g22, g23);
  input g1, g2, g3, g6, g7;
  output g22, g23;
  nand n10 (g10, g1, g3);
  nand n11 (g11, g3, g6);
  nand n16 (g16, g2, g11);
  nand n19 (g19, g11, g7);
  nand n22 (g22, g10, g16);
  nand n23 (g23, g16, g19);
endmodule";
    crate::parser::parse_netlist(src).expect("c17 source is valid")
}

/// Builds one of the ISCAS-85-like training designs by name.
///
/// `scale` multiplies the datapath widths/depths; `seed` drives the random
/// glue-logic clouds. Returns `None` for unknown names. `"c17"` resolves to
/// the real (fixed-size) benchmark, ignoring `scale`/`seed` — handy for
/// smoke harnesses that take a design name.
pub fn iscas_like(name: &str, scale: u32, seed: u64) -> Option<Netlist> {
    let s = scale.max(1) as usize;
    Some(match name {
        "c17" => iscas_c17(),
        "c432" => interrupt_controller("c432", 9 * s, seed),
        "c499" => ecc_design("c499", 8 * s, seed),
        "c880" => alu_design("c880", 8 * s, seed, false),
        "c1355" => ecc_design("c1355", 12 * s, seed ^ 0x1355),
        "c1908" => ecc_design("c1908", 16 * s, seed ^ 0x1908),
        "c2670" => alu_design("c2670", 12 * s, seed ^ 0x2670, true),
        _ => return None,
    })
}

/// The full training suite at a given scale.
pub fn training_suite(scale: u32, seed: u64) -> Vec<Netlist> {
    TRAINING
        .iter()
        .map(|d| iscas_like(d.name, scale, seed).expect("known training design"))
        .collect()
}

/// c432 flavour: priority/interrupt channel logic.
fn interrupt_controller(name: &str, channels: usize, seed: u64) -> Netlist {
    let mut n = Netlist::new(name);
    let reqs: Vec<GateId> = (0..channels)
        .map(|i| n.add_input(format!("req{i}")))
        .collect();
    let masks: Vec<GateId> = (0..channels)
        .map(|i| n.add_input(format!("msk{i}")))
        .collect();
    let enabled: Vec<GateId> = reqs
        .iter()
        .zip(&masks)
        .enumerate()
        .map(|(i, (&r, &m))| {
            n.add_gate(crate::GateKind::And, format!("en{i}"), &[r, m])
                .expect("valid")
        })
        .collect();
    let grants = blocks::priority_arbiter(&mut n, "arb", &enabled);
    let any = blocks::parity_tree(&mut n, "any", &grants);
    let cloud_in: Vec<GateId> = grants.iter().copied().chain([any]).collect();
    let frontier = blocks::random_cloud(&mut n, "glue", &cloud_in, channels * 8, seed);
    for (i, &g) in grants.iter().enumerate() {
        n.add_output(format!("grant{i}"), g).expect("valid output");
    }
    n.add_output("any", any).expect("valid output");
    for (i, &f) in frontier.iter().take(4).enumerate() {
        n.add_output(format!("f{i}"), f).expect("valid output");
    }
    n
}

/// c499/c1355/c1908 flavour: single-error-correcting code logic (parity
/// trees + syndrome decode + correction XORs), applied over two
/// encode/decode stages like the expanded c1355/c1908 variants.
fn ecc_design(name: &str, width: usize, seed: u64) -> Netlist {
    let mut n = Netlist::new(name);
    let data: Vec<GateId> = (0..width).map(|i| n.add_input(format!("d{i}"))).collect();
    let chk_bits = (usize::BITS - width.leading_zeros()) as usize + 1;
    let chk: Vec<GateId> = (0..chk_bits)
        .map(|i| n.add_input(format!("c{i}")))
        .collect();
    let mut current = data;
    for stage in 0..2 {
        // Syndrome: parity of data subsets XOR check bit.
        let mut syndrome = Vec::with_capacity(chk_bits);
        for (b, &c) in chk.iter().enumerate() {
            let subset: Vec<GateId> = current
                .iter()
                .enumerate()
                .filter(|(i, _)| (i >> b) & 1 == 1 || b == 0)
                .map(|(_, &g)| g)
                .collect();
            let subset = if subset.is_empty() {
                vec![current[0]]
            } else {
                subset
            };
            let p = blocks::parity_tree(&mut n, &format!("st{stage}_syn{b}"), &subset);
            let s = n
                .add_gate(crate::GateKind::Xor, format!("st{stage}_snd{b}"), &[p, c])
                .expect("valid");
            syndrome.push(s);
        }
        // Decode syndrome to correction mask and apply.
        let dec = blocks::decoder(
            &mut n,
            &format!("st{stage}_dec"),
            &syndrome[0..syndrome.len().min(5)],
        );
        current = current
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let sel = dec[i % dec.len()];
                n.add_gate(crate::GateKind::Xor, format!("st{stage}_cor{i}"), &[d, sel])
                    .expect("valid")
            })
            .collect();
    }
    let frontier = blocks::random_cloud(&mut n, "glue", &current, width * 10, seed);
    for (i, &c) in current.iter().enumerate() {
        n.add_output(format!("q{i}"), c).expect("valid output");
    }
    for (i, &f) in frontier.iter().take(4).enumerate() {
        n.add_output(format!("f{i}"), f).expect("valid output");
    }
    n
}

/// c880/c2670 flavour: small ALU (add/sub/logic ops muxed by opcode) with
/// optional comparator/control extras.
fn alu_design(name: &str, width: usize, seed: u64, extras: bool) -> Netlist {
    let mut n = Netlist::new(name);
    let a: Vec<GateId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<GateId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
    let op0 = n.add_input("op0");
    let op1 = n.add_input("op1");
    let (sum, _c) = blocks::ripple_adder(&mut n, "add", &a, &b, None);
    let (diff, _bo) = blocks::ripple_subtractor(&mut n, "sub", &a, &b);
    let andv: Vec<GateId> = a
        .iter()
        .zip(&b)
        .enumerate()
        .map(|(i, (&x, &y))| {
            n.add_gate(crate::GateKind::And, format!("la{i}"), &[x, y])
                .expect("valid")
        })
        .collect();
    let xorv = blocks::xor_bus(&mut n, "lx", &a, &b);
    let m0 = blocks::mux_bus(&mut n, "m0", op0, &sum, &diff);
    let m1 = blocks::mux_bus(&mut n, "m1", op0, &andv, &xorv);
    let res = blocks::mux_bus(&mut n, "m2", op1, &m0, &m1);
    let mut sinks = res.clone();
    if extras {
        let eq = blocks::equals(&mut n, "eq", &a, &b);
        let grants = blocks::priority_arbiter(&mut n, "pri", &res[0..width.min(8)]);
        sinks.push(eq);
        sinks.extend(&grants);
        n.add_output("eq", eq).expect("valid output");
    }
    let frontier = blocks::random_cloud(&mut n, "glue", &sinks, width * 10, seed);
    for (i, &r) in res.iter().enumerate() {
        n.add_output(format!("r{i}"), r).expect("valid output");
    }
    for (i, &f) in frontier.iter().take(4).enumerate() {
        n.add_output(format!("f{i}"), f).expect("valid output");
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_matches_published_structure() {
        let n = iscas_c17();
        assert_eq!(n.stats().cells, 6);
        assert_eq!(n.data_inputs().len(), 5);
        assert_eq!(n.outputs().len(), 2);
    }

    #[test]
    fn all_training_designs_build_and_validate() {
        for d in TRAINING {
            let n = iscas_like(d.name, 1, 99).unwrap();
            n.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
            assert!(
                n.stats().cells >= d.approx_cells / 3,
                "{} too small: {} cells",
                d.name,
                n.stats().cells
            );
        }
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(iscas_like("c9999", 1, 0).is_none());
    }

    #[test]
    fn training_suite_is_deterministic() {
        let a = training_suite(1, 5);
        let b = training_suite(1, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_grows_designs() {
        let small = iscas_like("c880", 1, 1).unwrap();
        let large = iscas_like("c880", 2, 1).unwrap();
        assert!(large.stats().cells > small.stats().cells);
    }
}
