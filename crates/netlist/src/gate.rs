//! Gate primitives: [`GateKind`], [`GateId`] and [`Gate`].

use std::fmt;

/// Identifier of a gate inside a [`crate::Netlist`].
///
/// Ids are dense indices assigned in insertion order; they are stable for the
/// lifetime of the netlist (no gate is ever removed in place — rewriting
/// passes build a new netlist instead).
///
/// ```
/// use polaris_netlist::GateId;
/// let id = GateId::new(7);
/// assert_eq!(id.index(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(u32);

impl GateId {
    /// Creates an id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn new(index: usize) -> Self {
        GateId(u32::try_from(index).expect("gate index overflows u32"))
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The logic function computed by a gate.
///
/// The alphabet matches what a post-synthesis gate-level netlist from a
/// standard-cell flow contains, plus `Input`/`Const*` pseudo-gates so the
/// whole design is one homogeneous graph.
///
/// Arity contract (checked by [`crate::Netlist::validate`]):
///
/// | kind | fanin count |
/// |------|-------------|
/// | `Input`, `Const0`, `Const1` | 0 |
/// | `Buf`, `Not`, `Dff` | 1 |
/// | `And`, `Or`, `Nand`, `Nor`, `Xor`, `Xnor` | ≥ 2 |
/// | `Mux` | 3 (`sel`, `a` when sel=1, `b` when sel=0) |
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Primary input (data or mask randomness).
    Input,
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// Buffer (identity).
    Buf,
    /// Inverter.
    Not,
    /// N-ary AND.
    And,
    /// N-ary OR.
    Or,
    /// N-ary NAND.
    Nand,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR (odd parity).
    Xor,
    /// N-ary XNOR (even parity).
    Xnor,
    /// 2:1 multiplexer: `out = sel ? a : b`.
    Mux,
    /// D flip-flop with an implicit global clock; fanin is `d`, the gate's
    /// value is `q`.
    Dff,
}

impl GateKind {
    /// All kinds, in a fixed order used for one-hot feature encodings.
    pub const ALL: [GateKind; 13] = [
        GateKind::Input,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux,
        GateKind::Dff,
    ];

    /// Position of this kind within [`GateKind::ALL`].
    pub fn ordinal(self) -> usize {
        GateKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind listed in ALL")
    }

    /// Returns the permitted fanin arity as `(min, max)`; `max == usize::MAX`
    /// means unbounded (n-ary gates).
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Buf | GateKind::Not | GateKind::Dff => (1, 1),
            GateKind::Mux => (3, 3),
            GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => (2, usize::MAX),
        }
    }

    /// True for the kinds that hold sequential state.
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff)
    }

    /// True for `Input` (data or mask) pseudo-gates.
    pub fn is_input(self) -> bool {
        matches!(self, GateKind::Input)
    }

    /// True for constant pseudo-gates.
    pub fn is_const(self) -> bool {
        matches!(self, GateKind::Const0 | GateKind::Const1)
    }

    /// True for real combinational logic cells (excludes inputs, constants and
    /// flip-flops). These are the cells that consume dynamic power on a
    /// toggle and that the masking transforms may replace.
    pub fn is_combinational_cell(self) -> bool {
        !self.is_input() && !self.is_const() && !self.is_sequential()
    }

    /// Keyword used in the textual netlist format.
    pub fn keyword(self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
            GateKind::Dff => "dff",
        }
    }

    /// Parses a textual keyword back into a kind.
    ///
    /// ```
    /// use polaris_netlist::GateKind;
    /// assert_eq!(GateKind::from_keyword("nand"), Some(GateKind::Nand));
    /// assert_eq!(GateKind::from_keyword("bogus"), None);
    /// ```
    pub fn from_keyword(kw: &str) -> Option<Self> {
        GateKind::ALL.iter().copied().find(|k| k.keyword() == kw)
    }

    /// Short upper-case mnemonic used in reports and extracted rules
    /// (Table V of the paper prints e.g. `G4 = NAND`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Input => "IN",
            GateKind::Const0 => "C0",
            GateKind::Const1 => "C1",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Mux => "MUX",
            GateKind::Dff => "DFF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single gate instance inside a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    kind: GateKind,
    name: String,
    fanin: Vec<GateId>,
}

impl Gate {
    pub(crate) fn new(kind: GateKind, name: impl Into<String>, fanin: Vec<GateId>) -> Self {
        Gate {
            kind,
            name: name.into(),
            fanin,
        }
    }

    /// The gate's logic function.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Instance name (unique within a parsed netlist).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Driver gates, in pin order.
    pub fn fanin(&self) -> &[GateId] {
        &self.fanin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_id_roundtrip() {
        for i in [0usize, 1, 42, 1_000_000] {
            assert_eq!(GateId::new(i).index(), i);
        }
    }

    #[test]
    fn gate_id_display_matches_debug() {
        let id = GateId::new(9);
        assert_eq!(format!("{id}"), "g9");
        assert_eq!(format!("{id:?}"), "g9");
    }

    #[test]
    fn kind_ordinal_is_position_in_all() {
        for (i, k) in GateKind::ALL.iter().enumerate() {
            assert_eq!(k.ordinal(), i);
        }
    }

    #[test]
    fn kind_keyword_roundtrip() {
        for k in GateKind::ALL {
            assert_eq!(GateKind::from_keyword(k.keyword()), Some(k));
        }
        assert_eq!(GateKind::from_keyword(""), None);
        assert_eq!(
            GateKind::from_keyword("AND"),
            None,
            "keywords are lowercase"
        );
    }

    #[test]
    fn arity_contract() {
        assert_eq!(GateKind::Input.arity(), (0, 0));
        assert_eq!(GateKind::Not.arity(), (1, 1));
        assert_eq!(GateKind::Mux.arity(), (3, 3));
        assert_eq!(GateKind::And.arity().0, 2);
    }

    #[test]
    fn sequential_and_cell_classification() {
        assert!(GateKind::Dff.is_sequential());
        assert!(!GateKind::Dff.is_combinational_cell());
        assert!(!GateKind::Input.is_combinational_cell());
        assert!(!GateKind::Const1.is_combinational_cell());
        assert!(GateKind::Nand.is_combinational_cell());
        assert!(GateKind::Xor.is_combinational_cell());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in GateKind::ALL {
            assert!(
                seen.insert(k.mnemonic()),
                "duplicate mnemonic {}",
                k.mnemonic()
            );
        }
    }
}
