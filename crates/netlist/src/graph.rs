//! Graph utilities over a [`Netlist`]: undirected adjacency, BFS locality
//! neighborhoods (the `L`-neighborhood POLARIS extracts structural features
//! from), and connectivity queries.

use std::collections::HashSet;

use crate::gate::GateId;
use crate::netlist::Netlist;

/// The ordered BFS neighborhood of a gate.
///
/// Slot 0 is always the center gate itself; slots `1..=l` are the first `l`
/// gates discovered by a deterministic breadth-first search over the
/// *undirected* gate graph (fanins before fanouts, each sorted by id).
/// If the component is exhausted before `l` neighbors are found the
/// remaining slots are `None`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Locality {
    slots: Vec<Option<GateId>>,
}

impl Locality {
    /// Total number of slots, including the center gate.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The gate occupying `slot`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slot_count()`.
    pub fn slot(&self, slot: usize) -> Option<GateId> {
        self.slots[slot]
    }

    /// The center gate (slot 0).
    pub fn center(&self) -> GateId {
        self.slots[0].expect("slot 0 always holds the center gate")
    }

    /// Iterates over the slots in order.
    pub fn iter(&self) -> impl Iterator<Item = Option<GateId>> + '_ {
        self.slots.iter().copied()
    }

    /// Number of populated slots (center included).
    pub fn populated(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// Precomputed adjacency over a netlist for fast repeated locality queries.
///
/// # Example
///
/// ```
/// use polaris_netlist::{GateKind, GraphView, Netlist};
/// # fn main() -> Result<(), polaris_netlist::NetlistError> {
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.add_gate(GateKind::Nand, "g", &[a, b])?;
/// n.add_output("y", g)?;
/// let view = GraphView::new(&n);
/// let loc = view.locality(g, 2);
/// assert_eq!(loc.center(), g);
/// assert_eq!(loc.populated(), 3); // g, a, b
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct GraphView {
    fanins: Vec<Vec<GateId>>,
    fanouts: Vec<Vec<GateId>>,
}

impl GraphView {
    /// Builds the adjacency for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        let mut fanins = Vec::with_capacity(netlist.gate_count());
        for (_, g) in netlist.iter() {
            fanins.push(g.fanin().to_vec());
        }
        let mut fanouts = netlist.fanouts();
        for f in &mut fanouts {
            f.sort_unstable();
            f.dedup();
        }
        GraphView { fanins, fanouts }
    }

    /// Number of gates in the underlying netlist.
    pub fn gate_count(&self) -> usize {
        self.fanins.len()
    }

    /// Drivers of `id` in pin order.
    pub fn fanin(&self, id: GateId) -> &[GateId] {
        &self.fanins[id.index()]
    }

    /// Readers of `id`, sorted by id.
    pub fn fanout(&self, id: GateId) -> &[GateId] {
        &self.fanouts[id.index()]
    }

    /// True if `a` drives `b` or `b` drives `a` (undirected adjacency).
    pub fn connected(&self, a: GateId, b: GateId) -> bool {
        self.fanins[b.index()].contains(&a) || self.fanins[a.index()].contains(&b)
    }

    /// Deterministic BFS locality of `center`: up to `l` neighbors,
    /// fanins-before-fanouts, ties broken by gate id.
    ///
    /// This is the neighborhood POLARIS vectorizes into structural features
    /// (paper §IV-A: "Breadth-first search (BFS) is employed to explore
    /// neighboring gates (Locality L)").
    pub fn locality(&self, center: GateId, l: usize) -> Locality {
        let mut slots = Vec::with_capacity(l + 1);
        slots.push(Some(center));
        let mut seen: HashSet<GateId> = HashSet::with_capacity(l + 1);
        seen.insert(center);
        let mut frontier = vec![center];
        'outer: while !frontier.is_empty() && slots.len() < l + 1 {
            let mut next = Vec::new();
            for &g in &frontier {
                // Fanins first (pin order), then fanouts (id order): a fixed,
                // documented traversal so feature vectors are reproducible.
                let fi = self.fanins[g.index()].iter();
                let fo = self.fanouts[g.index()].iter();
                for &nb in fi.chain(fo) {
                    if seen.insert(nb) {
                        slots.push(Some(nb));
                        next.push(nb);
                        if slots.len() == l + 1 {
                            break 'outer;
                        }
                    }
                }
            }
            frontier = next;
        }
        while slots.len() < l + 1 {
            slots.push(None);
        }
        Locality { slots }
    }

    /// Degree (fanin + fanout count) of a gate.
    pub fn degree(&self, id: GateId) -> usize {
        self.fanins[id.index()].len() + self.fanouts[id.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    /// Chain: a -> n1 -> n2 -> n3, plus b feeding n2.
    fn chain() -> (Netlist, Vec<GateId>) {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let n1 = n.add_gate(GateKind::Not, "n1", &[a]).unwrap();
        let n2 = n.add_gate(GateKind::And, "n2", &[n1, b]).unwrap();
        let n3 = n.add_gate(GateKind::Not, "n3", &[n2]).unwrap();
        n.add_output("y", n3).unwrap();
        (n, vec![a, b, n1, n2, n3])
    }

    #[test]
    fn locality_orders_fanin_before_fanout() {
        let (n, ids) = chain();
        let view = GraphView::new(&n);
        let loc = view.locality(ids[3], 4); // center = n2
        assert_eq!(loc.center(), ids[3]);
        // BFS ring 1 of n2: fanins [n1, b] then fanouts [n3].
        assert_eq!(loc.slot(1), Some(ids[2]));
        assert_eq!(loc.slot(2), Some(ids[1]));
        assert_eq!(loc.slot(3), Some(ids[4]));
        // ring 2: neighbor of n1 = a.
        assert_eq!(loc.slot(4), Some(ids[0]));
    }

    #[test]
    fn locality_pads_with_none() {
        let (n, ids) = chain();
        let view = GraphView::new(&n);
        let loc = view.locality(ids[0], 10);
        assert_eq!(loc.slot_count(), 11);
        assert_eq!(loc.populated(), 5, "whole component reachable");
        assert_eq!(loc.slot(10), None);
    }

    #[test]
    fn locality_never_repeats_gates() {
        let (n, ids) = chain();
        let view = GraphView::new(&n);
        let loc = view.locality(ids[3], 8);
        let mut seen = std::collections::HashSet::new();
        for s in loc.iter().flatten() {
            assert!(seen.insert(s), "gate {s} appeared twice");
        }
    }

    #[test]
    fn connected_is_symmetric() {
        let (n, ids) = chain();
        let view = GraphView::new(&n);
        for &x in &ids {
            for &y in &ids {
                assert_eq!(view.connected(x, y), view.connected(y, x));
            }
        }
        assert!(view.connected(ids[0], ids[2]));
        assert!(!view.connected(ids[0], ids[4]));
    }

    #[test]
    fn degree_counts_both_directions() {
        let (n, ids) = chain();
        let view = GraphView::new(&n);
        assert_eq!(view.degree(ids[3]), 3); // n2: fanins n1,b + fanout n3
        assert_eq!(view.degree(ids[0]), 1); // a: fanout n1
    }

    #[test]
    fn zero_locality_is_center_only() {
        let (n, ids) = chain();
        let view = GraphView::new(&n);
        let loc = view.locality(ids[3], 0);
        assert_eq!(loc.slot_count(), 1);
        assert_eq!(loc.center(), ids[3]);
    }
}
