//! Gate-level netlist infrastructure for the POLARIS reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`Netlist`] — an in-memory gate-level IR (gates, primary inputs/outputs,
//!   dedicated *mask* inputs used by the masking transforms).
//! * [`parser`] — a structural-Verilog-subset reader and writer so designs
//!   round-trip as text.
//! * [`graph`] — adjacency, BFS locality (the `L`-neighborhood used by
//!   POLARIS structural features), levelization and depth queries.
//! * [`generators`] — deterministic synthetic benchmark generators standing in
//!   for the ISCAS-85 training suite and the EPFL / MIT-CEP evaluation suite
//!   used in the paper (see `DESIGN.md` for the substitution rationale).
//! * [`transform`] — generic netlist rewriting passes (n-ary gate
//!   decomposition, mux lowering, dead-gate sweep).
//!
//! # Example
//!
//! ```
//! use polaris_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), polaris_netlist::NetlistError> {
//! let mut n = Netlist::new("toy");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_gate(GateKind::Nand, "g1", &[a, b])?;
//! n.add_output("y", g)?;
//! n.validate()?;
//! assert_eq!(n.gate_count(), 3);
//! # Ok(())
//! # }
//! ```

pub mod bench_format;
pub mod gate;
pub mod generators;
pub mod graph;
pub mod netlist;
pub mod parser;
pub mod transform;

pub use bench_format::{parse_bench, write_bench};
pub use gate::{Gate, GateId, GateKind};
pub use graph::{GraphView, Locality};
pub use netlist::{Netlist, NetlistError, NetlistStats};
pub use parser::{parse_netlist, write_netlist, ParseError};
