//! Generic netlist rewriting passes.
//!
//! * [`decompose`] — lowers n-ary gates to 2-input trees and muxes to
//!   AND/OR/NOT, producing the normalized alphabet the masking transforms
//!   operate on.
//! * [`sweep_dead`] — removes gates that reach no output (keeps inputs).
//! * [`RebuildMap`] — id mapping returned by the passes so callers can track
//!   gates across a rewrite (per-gate leakage attribution needs this).

use std::collections::HashMap;

use crate::gate::{GateId, GateKind};
use crate::netlist::{Netlist, NetlistError};

/// Mapping from gate ids in the original netlist to gate ids in a rewritten
/// netlist.
///
/// A single original gate may expand to several new gates; `representative`
/// maps it to the new gate computing its original output value, and `group`
/// lists every new gate materialized on its behalf (for leakage/overhead
/// attribution).
#[derive(Clone, Debug, Default)]
pub struct RebuildMap {
    representative: HashMap<GateId, GateId>,
    group: HashMap<GateId, Vec<GateId>>,
}

impl RebuildMap {
    /// Records that `old` is now computed by `new`, with `extras` being any
    /// additional gates created for it.
    pub fn record(&mut self, old: GateId, new: GateId, extras: Vec<GateId>) {
        self.representative.insert(old, new);
        let mut g = extras;
        g.push(new);
        self.group.insert(old, g);
    }

    /// The new gate computing the original output of `old`.
    pub fn representative(&self, old: GateId) -> Option<GateId> {
        self.representative.get(&old).copied()
    }

    /// All new gates materialized for `old` (representative included).
    pub fn group(&self, old: GateId) -> &[GateId] {
        self.group.get(&old).map_or(&[], |v| v.as_slice())
    }

    /// Number of mapped original gates.
    pub fn len(&self) -> usize {
        self.representative.len()
    }

    /// True if no gates are mapped.
    pub fn is_empty(&self) -> bool {
        self.representative.is_empty()
    }
}

/// Lowers every n-ary (>2 input) gate into a balanced tree of 2-input gates
/// and every mux into AND/OR/NOT, leaving the rest untouched.
///
/// The output netlist uses only the alphabet
/// `{Input, Const0, Const1, Buf, Not, And, Or, Nand, Nor, Xor, Xnor, Dff}`
/// with all logic gates having exactly 1 or 2 inputs — the normal form the
/// Trichina masking transform expects.
///
/// # Errors
///
/// Propagates [`NetlistError`] from netlist construction (cannot happen for a
/// valid input netlist).
pub fn decompose(netlist: &Netlist) -> Result<(Netlist, RebuildMap), NetlistError> {
    let mut out = Netlist::new(netlist.name().to_string());
    let mut map = RebuildMap::default();
    let mut new_id: HashMap<GateId, GateId> = HashMap::with_capacity(netlist.gate_count());

    // Reserve dffs first so feedback resolves, mirroring the parser.
    let order = netlist.topo_order()?;
    for (old_id, gate) in netlist.iter() {
        if gate.kind() == GateKind::Dff {
            let id = out.add_dff_placeholder(gate.name().to_string());
            new_id.insert(old_id, id);
            map.record(old_id, id, Vec::new());
        }
    }
    let data_inputs: std::collections::HashSet<GateId> =
        netlist.data_inputs().iter().copied().collect();

    for old_id in order {
        let gate = netlist.gate(old_id);
        if gate.kind() == GateKind::Dff {
            continue; // connected below
        }
        let fanin: Vec<GateId> = gate.fanin().iter().map(|f| new_id[f]).collect();
        let (rep, extras) = lower_gate(&mut out, gate.kind(), gate.name(), &fanin, old_id, {
            if gate.kind().is_input() {
                Some(data_inputs.contains(&old_id))
            } else {
                None
            }
        })?;
        new_id.insert(old_id, rep);
        map.record(old_id, rep, extras);
    }
    for (old_id, gate) in netlist.iter() {
        if gate.kind() == GateKind::Dff {
            out.connect_dff(new_id[&old_id], new_id[&gate.fanin()[0]]);
        }
    }
    for (port, driver) in netlist.outputs() {
        out.add_output(port.clone(), new_id[driver])?;
    }
    out.validate()?;
    Ok((out, map))
}

/// Emits the lowered form of one gate; returns `(representative, extras)`.
fn lower_gate(
    out: &mut Netlist,
    kind: GateKind,
    name: &str,
    fanin: &[GateId],
    old_id: GateId,
    input_is_data: Option<bool>,
) -> Result<(GateId, Vec<GateId>), NetlistError> {
    let uniq = |suffix: &str| format!("{name}_{suffix}_{}", old_id.index());
    match kind {
        GateKind::Input => {
            let id = if input_is_data == Some(false) {
                out.add_mask_input(name.to_string())
            } else {
                out.add_input(name.to_string())
            };
            Ok((id, Vec::new()))
        }
        GateKind::Const0 | GateKind::Const1 => {
            Ok((out.add_gate(kind, name.to_string(), &[])?, Vec::new()))
        }
        GateKind::Buf | GateKind::Not => {
            Ok((out.add_gate(kind, name.to_string(), fanin)?, Vec::new()))
        }
        GateKind::Mux => {
            // out = (sel & a) | (!sel & b)
            let sel = fanin[0];
            let a = fanin[1];
            let b = fanin[2];
            let ns = out.add_gate(GateKind::Not, uniq("muxn"), &[sel])?;
            let t1 = out.add_gate(GateKind::And, uniq("muxa"), &[sel, a])?;
            let t2 = out.add_gate(GateKind::And, uniq("muxb"), &[ns, b])?;
            let rep = out.add_gate(GateKind::Or, name.to_string(), &[t1, t2])?;
            Ok((rep, vec![ns, t1, t2]))
        }
        GateKind::And | GateKind::Or | GateKind::Xor => {
            if fanin.len() == 2 {
                return Ok((out.add_gate(kind, name.to_string(), fanin)?, Vec::new()));
            }
            let (rep, extras) = reduce_tree(out, kind, name, fanin, old_id)?;
            Ok((rep, extras))
        }
        GateKind::Nand | GateKind::Nor | GateKind::Xnor => {
            if fanin.len() == 2 {
                return Ok((out.add_gate(kind, name.to_string(), fanin)?, Vec::new()));
            }
            // n-ary inverting gate = tree of the positive kind + inverter.
            let pos = match kind {
                GateKind::Nand => GateKind::And,
                GateKind::Nor => GateKind::Or,
                GateKind::Xnor => GateKind::Xor,
                _ => unreachable!(),
            };
            let (tree, mut extras) = reduce_tree(out, pos, &uniq("pos"), fanin, old_id)?;
            extras.push(tree);
            let rep = out.add_gate(GateKind::Not, name.to_string(), &[tree])?;
            Ok((rep, extras))
        }
        GateKind::Dff => unreachable!("dffs handled by caller"),
    }
}

/// Builds a balanced binary tree of `kind` over `leaves`.
fn reduce_tree(
    out: &mut Netlist,
    kind: GateKind,
    name: &str,
    leaves: &[GateId],
    old_id: GateId,
) -> Result<(GateId, Vec<GateId>), NetlistError> {
    debug_assert!(leaves.len() >= 2);
    let mut level: Vec<GateId> = leaves.to_vec();
    let mut extras = Vec::new();
    let mut counter = 0usize;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks(2);
        for pair in &mut it {
            if pair.len() == 2 {
                let is_root = level.len() == 2;
                let gname = if is_root {
                    name.to_string()
                } else {
                    format!("{name}_t{counter}_{}", old_id.index())
                };
                counter += 1;
                let g = out.add_gate(kind, gname, pair)?;
                if !is_root {
                    extras.push(g);
                }
                next.push(g);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let rep = level[0];
    Ok((rep, extras))
}

/// Constant-propagation and local simplification.
///
/// Folds gates whose inputs are known constants, absorbs identity/annihilator
/// operands (`AND(x, 1) → BUF(x)`, `AND(x, 0) → CONST0`, `XOR(x, 1) →
/// NOT(x)`, mux with a known select, …) and rewrites the netlist. Constants
/// are *not* propagated through flip-flops (their reset state is a runtime
/// property). Run [`sweep_dead`] afterwards to drop the orphaned logic.
///
/// # Errors
///
/// Propagates [`NetlistError`] from reconstruction.
pub fn propagate_constants(netlist: &Netlist) -> Result<(Netlist, RebuildMap), NetlistError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Value {
        Known(bool),
        Unknown,
    }

    let mut out = Netlist::new(netlist.name().to_string());
    let mut map = RebuildMap::default();
    let mut new_id: HashMap<GateId, GateId> = HashMap::with_capacity(netlist.gate_count());
    let mut value: Vec<Value> = vec![Value::Unknown; netlist.gate_count()];
    let data_inputs: std::collections::HashSet<GateId> =
        netlist.data_inputs().iter().copied().collect();

    // Reserve flip-flops (opaque to constant propagation).
    for (old, gate) in netlist.iter() {
        if gate.kind() == GateKind::Dff {
            let id = out.add_dff_placeholder(gate.name().to_string());
            new_id.insert(old, id);
            map.record(old, id, Vec::new());
        }
    }

    // Emit a constant gate in `out`, reusing one per polarity.
    let mut const_cache: [Option<GateId>; 2] = [None, None];
    let mut emit_const = |out: &mut Netlist, v: bool, hint: &str| -> GateId {
        let slot = usize::from(v);
        if let Some(id) = const_cache[slot] {
            return id;
        }
        let kind = if v {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        let id = out
            .add_gate(kind, format!("fold_{hint}_{}", u8::from(v)), &[])
            .expect("constants are always valid");
        const_cache[slot] = Some(id);
        id
    };

    for old in netlist.topo_order()? {
        let gate = netlist.gate(old);
        match gate.kind() {
            GateKind::Dff => continue,
            GateKind::Input => {
                let id = if data_inputs.contains(&old) {
                    out.add_input(gate.name().to_string())
                } else {
                    out.add_mask_input(gate.name().to_string())
                };
                new_id.insert(old, id);
                map.record(old, id, Vec::new());
                continue;
            }
            GateKind::Const0 | GateKind::Const1 => {
                value[old.index()] = Value::Known(gate.kind() == GateKind::Const1);
                let id = emit_const(&mut out, gate.kind() == GateKind::Const1, gate.name());
                new_id.insert(old, id);
                map.record(old, id, Vec::new());
                continue;
            }
            _ => {}
        }

        // Partition fanins into known constants and live signals.
        let kinds = gate.kind();
        let fanin_vals: Vec<Value> = gate.fanin().iter().map(|f| value[f.index()]).collect();
        let live: Vec<GateId> = gate
            .fanin()
            .iter()
            .zip(&fanin_vals)
            .filter(|(_, v)| **v == Value::Unknown)
            .map(|(f, _)| new_id[f])
            .collect();
        let consts: Vec<bool> = fanin_vals
            .iter()
            .filter_map(|v| match v {
                Value::Known(b) => Some(*b),
                Value::Unknown => None,
            })
            .collect();

        // Decide the folded form.
        enum Fold {
            Const(bool),
            Wire(GateId, bool /*invert*/),
            Gate(GateKind, Vec<GateId>, bool /*invert*/),
        }
        let fold = match kinds {
            GateKind::Buf | GateKind::Not => {
                let invert = kinds == GateKind::Not;
                match fanin_vals[0] {
                    Value::Known(b) => Fold::Const(b ^ invert),
                    Value::Unknown => Fold::Wire(live[0], invert),
                }
            }
            GateKind::And | GateKind::Nand => {
                let invert = kinds == GateKind::Nand;
                if consts.iter().any(|&b| !b) {
                    Fold::Const(invert)
                } else if live.is_empty() {
                    Fold::Const(!invert)
                } else if live.len() == 1 {
                    Fold::Wire(live[0], invert)
                } else {
                    Fold::Gate(GateKind::And, live, invert)
                }
            }
            GateKind::Or | GateKind::Nor => {
                let invert = kinds == GateKind::Nor;
                if consts.contains(&true) {
                    Fold::Const(!invert)
                } else if live.is_empty() {
                    Fold::Const(invert)
                } else if live.len() == 1 {
                    Fold::Wire(live[0], invert)
                } else {
                    Fold::Gate(GateKind::Or, live, invert)
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut invert = kinds == GateKind::Xnor;
                invert ^= consts.iter().filter(|&&b| b).count() % 2 == 1;
                if live.is_empty() {
                    Fold::Const(invert)
                } else if live.len() == 1 {
                    Fold::Wire(live[0], invert)
                } else {
                    Fold::Gate(GateKind::Xor, live, invert)
                }
            }
            GateKind::Mux => match fanin_vals[0] {
                Value::Known(sel) => {
                    let pick = if sel { 1 } else { 2 };
                    match fanin_vals[pick] {
                        Value::Known(b) => Fold::Const(b),
                        Value::Unknown => Fold::Wire(new_id[&gate.fanin()[pick]], false),
                    }
                }
                Value::Unknown => match (fanin_vals[1], fanin_vals[2]) {
                    (Value::Known(a), Value::Known(b)) if a == b => Fold::Const(a),
                    _ => Fold::Gate(
                        GateKind::Mux,
                        gate.fanin().iter().map(|f| new_id[f]).collect(),
                        false,
                    ),
                },
            },
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => {
                unreachable!("handled above")
            }
        };

        let (rep, extras) = match fold {
            Fold::Const(b) => {
                value[old.index()] = Value::Known(b);
                (emit_const(&mut out, b, gate.name()), Vec::new())
            }
            Fold::Wire(w, false) => (w, Vec::new()),
            Fold::Wire(w, true) => (
                out.add_gate(GateKind::Not, gate.name().to_string(), &[w])?,
                Vec::new(),
            ),
            Fold::Gate(kind, fanin, invert) => {
                // Inversion folds into the native inverted kind.
                let final_kind = match (kind, invert) {
                    (GateKind::And, true) => GateKind::Nand,
                    (GateKind::Or, true) => GateKind::Nor,
                    (GateKind::Xor, true) => GateKind::Xnor,
                    (k, _) => k,
                };
                (
                    out.add_gate(final_kind, gate.name().to_string(), &fanin)?,
                    Vec::new(),
                )
            }
        };
        new_id.insert(old, rep);
        map.record(old, rep, extras);
    }
    for (old, gate) in netlist.iter() {
        if gate.kind() == GateKind::Dff {
            out.connect_dff(new_id[&old], new_id[&gate.fanin()[0]]);
        }
    }
    for (port, driver) in netlist.outputs() {
        out.add_output(port.clone(), new_id[driver])?;
    }
    out.validate()?;
    Ok((out, map))
}

/// Removes gates that cannot reach any primary output. Inputs (data and
/// mask) are always kept so the port interface is stable.
///
/// Returns the swept netlist and the id mapping for surviving gates.
///
/// # Errors
///
/// Propagates [`NetlistError`] from reconstruction.
pub fn sweep_dead(netlist: &Netlist) -> Result<(Netlist, RebuildMap), NetlistError> {
    let n = netlist.gate_count();
    let mut live = vec![false; n];
    let mut stack: Vec<GateId> = netlist.outputs().iter().map(|(_, d)| *d).collect();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id.index()], true) {
            continue;
        }
        for &f in netlist.gate(id).fanin() {
            if !live[f.index()] {
                stack.push(f);
            }
        }
    }
    for &i in netlist.data_inputs().iter().chain(netlist.mask_inputs()) {
        live[i.index()] = true;
    }

    let mut out = Netlist::new(netlist.name().to_string());
    let mut map = RebuildMap::default();
    let mut new_id: HashMap<GateId, GateId> = HashMap::new();
    for (old, gate) in netlist.iter() {
        if live[old.index()] && gate.kind() == GateKind::Dff {
            let id = out.add_dff_placeholder(gate.name().to_string());
            new_id.insert(old, id);
            map.record(old, id, Vec::new());
        }
    }
    let data_inputs: std::collections::HashSet<GateId> =
        netlist.data_inputs().iter().copied().collect();
    for old in netlist.topo_order()? {
        if !live[old.index()] {
            continue;
        }
        let gate = netlist.gate(old);
        match gate.kind() {
            GateKind::Dff => continue,
            GateKind::Input => {
                let id = if data_inputs.contains(&old) {
                    out.add_input(gate.name().to_string())
                } else {
                    out.add_mask_input(gate.name().to_string())
                };
                new_id.insert(old, id);
                map.record(old, id, Vec::new());
            }
            _ => {
                let fanin: Vec<GateId> = gate.fanin().iter().map(|f| new_id[f]).collect();
                let id = out.add_gate(gate.kind(), gate.name().to_string(), &fanin)?;
                new_id.insert(old, id);
                map.record(old, id, Vec::new());
            }
        }
    }
    for (old, gate) in netlist.iter() {
        if live[old.index()] && gate.kind() == GateKind::Dff {
            out.connect_dff(new_id[&old], new_id[&gate.fanin()[0]]);
        }
    }
    for (port, driver) in netlist.outputs() {
        out.add_output(port.clone(), new_id[driver])?;
    }
    out.validate()?;
    Ok((out, map))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_lowers_wide_and() {
        let mut n = Netlist::new("w");
        let ins: Vec<GateId> = (0..5).map(|i| n.add_input(format!("i{i}"))).collect();
        let g = n.add_gate(GateKind::And, "g", &ins).unwrap();
        n.add_output("y", g).unwrap();
        let (d, map) = decompose(&n).unwrap();
        for (_, gate) in d.iter() {
            if gate.kind().is_combinational_cell() {
                assert!(gate.fanin().len() <= 2);
            }
        }
        assert!(map.representative(g).is_some());
        assert!(!map.group(g).is_empty());
    }

    #[test]
    fn decompose_lowers_mux() {
        let mut n = Netlist::new("m");
        let s = n.add_input("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::Mux, "g", &[s, a, b]).unwrap();
        n.add_output("y", g).unwrap();
        let (d, _) = decompose(&n).unwrap();
        assert!(d.iter().all(|(_, g)| g.kind() != GateKind::Mux));
        d.validate().unwrap();
    }

    #[test]
    fn decompose_preserves_dff_feedback() {
        let mut n = Netlist::new("c");
        let q = n.add_dff_placeholder("q");
        let d = n.add_gate(GateKind::Not, "d", &[q]).unwrap();
        n.connect_dff(q, d);
        n.add_output("y", q).unwrap();
        let (dec, _) = decompose(&n).unwrap();
        dec.validate().unwrap();
        assert_eq!(dec.stats().flops, 1);
    }

    #[test]
    fn decompose_nary_inverting_gates() {
        let mut n = Netlist::new("w");
        let ins: Vec<GateId> = (0..4).map(|i| n.add_input(format!("i{i}"))).collect();
        let g = n.add_gate(GateKind::Nand, "g", &ins).unwrap();
        n.add_output("y", g).unwrap();
        let (d, map) = decompose(&n).unwrap();
        let rep = map.representative(g).unwrap();
        assert_eq!(
            d.gate(rep).kind(),
            GateKind::Not,
            "root of lowered nand is an inverter"
        );
    }

    #[test]
    fn constants_fold_through_logic() {
        // y = AND(a, CONST1) → BUF(a); z = OR(b, CONST1) → CONST1;
        // w = XOR(a, CONST1) → NOT(a).
        let mut n = Netlist::new("cp");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let one = n.add_gate(GateKind::Const1, "one", &[]).unwrap();
        let y = n.add_gate(GateKind::And, "y", &[a, one]).unwrap();
        let z = n.add_gate(GateKind::Or, "z", &[b, one]).unwrap();
        let w = n.add_gate(GateKind::Xor, "w", &[a, one]).unwrap();
        n.add_output("y", y).unwrap();
        n.add_output("z", z).unwrap();
        n.add_output("w", w).unwrap();
        let (f, map) = propagate_constants(&n).unwrap();
        // y folded to the input wire itself.
        assert_eq!(map.representative(y), map.representative(a));
        // z folded to a constant-1 gate.
        let zr = map.representative(z).unwrap();
        assert_eq!(f.gate(zr).kind(), GateKind::Const1);
        // w folded to an inverter.
        let wr = map.representative(w).unwrap();
        assert_eq!(f.gate(wr).kind(), GateKind::Not);
    }

    #[test]
    fn mux_with_known_select_folds() {
        let mut n = Netlist::new("cp");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let zero = n.add_gate(GateKind::Const0, "z", &[]).unwrap();
        let m = n.add_gate(GateKind::Mux, "m", &[zero, a, b]).unwrap();
        n.add_output("y", m).unwrap();
        let (_, map) = propagate_constants(&n).unwrap();
        // sel = 0 picks the `b` branch.
        assert_eq!(map.representative(m), map.representative(b));
    }

    #[test]
    fn full_constant_cone_collapses() {
        let mut n = Netlist::new("cp");
        let one = n.add_gate(GateKind::Const1, "one", &[]).unwrap();
        let zero = n.add_gate(GateKind::Const0, "zero", &[]).unwrap();
        let g1 = n.add_gate(GateKind::Nand, "g1", &[one, zero]).unwrap(); // 1
        let g2 = n.add_gate(GateKind::Xor, "g2", &[g1, one]).unwrap(); // 0
        n.add_output("y", g2).unwrap();
        let (f, map) = propagate_constants(&n).unwrap();
        let rep = map.representative(g2).unwrap();
        assert_eq!(f.gate(rep).kind(), GateKind::Const0);
    }

    #[test]
    fn propagation_preserves_function_and_dffs() {
        // Mixed design with feedback: fold must not touch dff semantics.
        let mut n = Netlist::new("cp");
        let a = n.add_input("a");
        let one = n.add_gate(GateKind::Const1, "one", &[]).unwrap();
        let q = n.add_dff_placeholder("q");
        let nx = n.add_gate(GateKind::Xor, "nx", &[q, one]).unwrap(); // = NOT q
        n.connect_dff(q, nx);
        let y = n.add_gate(GateKind::And, "y", &[a, q]).unwrap();
        n.add_output("y", y).unwrap();
        let (f, _) = propagate_constants(&n).unwrap();
        f.validate().unwrap();
        assert_eq!(f.stats().flops, 1);
        // The xor-with-1 became an inverter feeding the dff.
        assert!(f.iter().any(|(_, g)| g.kind() == GateKind::Not));
    }

    #[test]
    fn sweep_removes_unreachable() {
        let mut n = Netlist::new("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let used = n.add_gate(GateKind::Not, "used", &[a]).unwrap();
        let _dead = n.add_gate(GateKind::And, "dead", &[a, b]).unwrap();
        n.add_output("y", used).unwrap();
        let (s, map) = sweep_dead(&n).unwrap();
        assert_eq!(s.stats().cells, 1);
        assert!(map.representative(used).is_some());
        // Inputs survive even if dead.
        assert_eq!(s.data_inputs().len(), 2);
    }

    #[test]
    fn sweep_keeps_dff_loops_reaching_outputs() {
        let mut n = Netlist::new("c");
        let q = n.add_dff_placeholder("q");
        let d = n.add_gate(GateKind::Not, "d", &[q]).unwrap();
        n.connect_dff(q, d);
        n.add_output("y", q).unwrap();
        let (s, _) = sweep_dead(&n).unwrap();
        assert_eq!(s.stats().flops, 1);
        assert_eq!(s.stats().cells, 1);
    }
}
