//! The [`Netlist`] container and its structural invariants.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::gate::{Gate, GateId, GateKind};

/// Error raised when a netlist violates a structural invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate references a fanin id that does not exist.
    DanglingFanin {
        /// The offending gate.
        gate: GateId,
        /// The missing driver id.
        fanin: GateId,
    },
    /// A gate has the wrong number of fanins for its kind.
    BadArity {
        /// The offending gate.
        gate: GateId,
        /// The gate's kind.
        kind: GateKind,
        /// Number of fanins found.
        found: usize,
    },
    /// The combinational part of the design contains a cycle.
    CombinationalCycle {
        /// A gate on the cycle.
        gate: GateId,
    },
    /// An output refers to a gate that does not exist.
    DanglingOutput {
        /// Output port name.
        port: String,
        /// The missing driver id.
        driver: GateId,
    },
    /// Two gates share an instance name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingFanin { gate, fanin } => {
                write!(f, "gate {gate} references missing fanin {fanin}")
            }
            NetlistError::BadArity { gate, kind, found } => {
                write!(
                    f,
                    "gate {gate} of kind {kind} has invalid fanin count {found}"
                )
            }
            NetlistError::CombinationalCycle { gate } => {
                write!(f, "combinational cycle through gate {gate}")
            }
            NetlistError::DanglingOutput { port, driver } => {
                write!(f, "output port {port} references missing gate {driver}")
            }
            NetlistError::DuplicateName { name } => {
                write!(f, "duplicate instance name {name}")
            }
        }
    }
}

impl Error for NetlistError {}

/// Aggregate statistics over a netlist, used in reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total gates including inputs/constants/flip-flops.
    pub total: usize,
    /// Combinational logic cells (maskable gates).
    pub cells: usize,
    /// Primary data inputs.
    pub data_inputs: usize,
    /// Mask randomness inputs.
    pub mask_inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops.
    pub flops: usize,
    /// Histogram over [`GateKind::ALL`] ordinals.
    pub kind_histogram: Vec<usize>,
}

/// A gate-level netlist: a DAG of [`Gate`]s (cycles are only allowed through
/// flip-flops), plus primary input/output bindings.
///
/// Inputs come in two flavours: *data* inputs (the functional interface) and
/// *mask* inputs (fresh-randomness ports added by masking transforms). Trace
/// campaigns re-randomize mask inputs on every trace for both TVLA
/// populations, which is what models the physical remasking of a protected
/// implementation.
///
/// # Example
///
/// ```
/// use polaris_netlist::{GateKind, Netlist};
/// # fn main() -> Result<(), polaris_netlist::NetlistError> {
/// let mut n = Netlist::new("half_adder");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let s = n.add_gate(GateKind::Xor, "s", &[a, b])?;
/// let c = n.add_gate(GateKind::And, "c", &[a, b])?;
/// n.add_output("sum", s)?;
/// n.add_output("carry", c)?;
/// n.validate()?;
/// assert_eq!(n.stats().cells, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    data_inputs: Vec<GateId>,
    mask_inputs: Vec<GateId>,
    outputs: Vec<(String, GateId)>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            data_inputs: Vec::new(),
            mask_inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary *data* input and returns its gate id.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        let id = self.push_gate(Gate::new(GateKind::Input, name, Vec::new()));
        self.data_inputs.push(id);
        id
    }

    /// Adds a *mask randomness* input and returns its gate id.
    ///
    /// Mask inputs are re-randomized every trace by the simulator's trace
    /// campaigns, independent of the fixed/random TVLA classes.
    pub fn add_mask_input(&mut self, name: impl Into<String>) -> GateId {
        let id = self.push_gate(Gate::new(GateKind::Input, name, Vec::new()));
        self.mask_inputs.push(id);
        id
    }

    /// Adds a gate of `kind` driven by `fanin` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the fanin count is invalid for
    /// `kind`, or [`NetlistError::DanglingFanin`] if a driver id does not
    /// exist yet. (Feedback through flip-flops can be created with
    /// [`Netlist::add_dff_placeholder`] + [`Netlist::connect_dff`].)
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        name: impl Into<String>,
        fanin: &[GateId],
    ) -> Result<GateId, NetlistError> {
        let (lo, hi) = kind.arity();
        if fanin.len() < lo || fanin.len() > hi {
            return Err(NetlistError::BadArity {
                gate: GateId::new(self.gates.len()),
                kind,
                found: fanin.len(),
            });
        }
        for &f in fanin {
            if f.index() >= self.gates.len() {
                return Err(NetlistError::DanglingFanin {
                    gate: GateId::new(self.gates.len()),
                    fanin: f,
                });
            }
        }
        Ok(self.push_gate(Gate::new(kind, name, fanin.to_vec())))
    }

    /// Adds a flip-flop whose data input will be connected later, enabling
    /// feedback loops. The placeholder drives itself until
    /// [`Netlist::connect_dff`] is called.
    pub fn add_dff_placeholder(&mut self, name: impl Into<String>) -> GateId {
        let id = GateId::new(self.gates.len());
        self.push_gate(Gate::new(GateKind::Dff, name, vec![id]));
        id
    }

    /// Connects the data input of a flip-flop created with
    /// [`Netlist::add_dff_placeholder`].
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a flip-flop or `d` does not exist.
    pub fn connect_dff(&mut self, dff: GateId, d: GateId) {
        assert!(d.index() < self.gates.len(), "dangling dff data input");
        let gate = &mut self.gates[dff.index()];
        assert_eq!(gate.kind(), GateKind::Dff, "connect_dff on non-dff gate");
        *gate = Gate::new(GateKind::Dff, gate.name().to_string(), vec![d]);
    }

    /// Reserves an id for a gate of `kind` whose fanin will be provided later
    /// via [`Netlist::replace_fanin`]. Used by the parser so instance outputs
    /// can be referenced before their drivers are resolved.
    ///
    /// Until connected, the placeholder has an empty fanin and will fail
    /// [`Netlist::validate`] for kinds whose minimum arity is nonzero.
    pub fn add_placeholder(&mut self, kind: GateKind, name: impl Into<String>) -> GateId {
        if kind == GateKind::Dff {
            return self.add_dff_placeholder(name);
        }
        self.push_gate(Gate::new(kind, name, Vec::new()))
    }

    /// Replaces the kind and fanin of an existing gate (typically a
    /// placeholder from [`Netlist::add_placeholder`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] or [`NetlistError::DanglingFanin`]
    /// under the same rules as [`Netlist::add_gate`].
    pub fn replace_fanin(
        &mut self,
        id: GateId,
        kind: GateKind,
        fanin: &[GateId],
    ) -> Result<(), NetlistError> {
        let (lo, hi) = kind.arity();
        if fanin.len() < lo || fanin.len() > hi {
            return Err(NetlistError::BadArity {
                gate: id,
                kind,
                found: fanin.len(),
            });
        }
        for &f in fanin {
            if f.index() >= self.gates.len() {
                return Err(NetlistError::DanglingFanin { gate: id, fanin: f });
            }
        }
        let name = self.gates[id.index()].name().to_string();
        self.gates[id.index()] = Gate::new(kind, name, fanin.to_vec());
        Ok(())
    }

    /// Binds an output port to its driver gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DanglingOutput`] if `driver` does not exist.
    pub fn add_output(
        &mut self,
        port: impl Into<String>,
        driver: GateId,
    ) -> Result<(), NetlistError> {
        let port = port.into();
        if driver.index() >= self.gates.len() {
            return Err(NetlistError::DanglingOutput { port, driver });
        }
        self.outputs.push((port, driver));
        Ok(())
    }

    fn push_gate(&mut self, gate: Gate) -> GateId {
        let id = GateId::new(self.gates.len());
        self.gates.push(gate);
        id
    }

    /// Number of gates (including input/constant pseudo-gates).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Access a gate by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over `(id, gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::new(i), g))
    }

    /// All gate ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len()).map(GateId::new)
    }

    /// Primary data inputs in declaration order.
    pub fn data_inputs(&self) -> &[GateId] {
        &self.data_inputs
    }

    /// Mask randomness inputs in declaration order.
    pub fn mask_inputs(&self) -> &[GateId] {
        &self.mask_inputs
    }

    /// Output port bindings in declaration order.
    pub fn outputs(&self) -> &[(String, GateId)] {
        &self.outputs
    }

    /// Ids of all combinational logic cells (the maskable gates).
    pub fn cell_ids(&self) -> Vec<GateId> {
        self.iter()
            .filter(|(_, g)| g.kind().is_combinational_cell())
            .map(|(id, _)| id)
            .collect()
    }

    /// Builds the fanout adjacency: `fanouts[i]` lists every gate that reads
    /// gate `i`.
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut out = vec![Vec::new(); self.gates.len()];
        for (id, gate) in self.iter() {
            for &f in gate.fanin() {
                out[f.index()].push(id);
            }
        }
        out
    }

    /// Checks every structural invariant.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: dangling fanins/outputs, arity
    /// violations, duplicate instance names, or a combinational cycle.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut names: HashMap<&str, ()> = HashMap::with_capacity(self.gates.len());
        for (id, gate) in self.iter() {
            let (lo, hi) = gate.kind().arity();
            let n = gate.fanin().len();
            if n < lo || n > hi {
                return Err(NetlistError::BadArity {
                    gate: id,
                    kind: gate.kind(),
                    found: n,
                });
            }
            for &f in gate.fanin() {
                if f.index() >= self.gates.len() {
                    return Err(NetlistError::DanglingFanin { gate: id, fanin: f });
                }
            }
            if !gate.name().is_empty() && names.insert(gate.name(), ()).is_some() {
                return Err(NetlistError::DuplicateName {
                    name: gate.name().to_string(),
                });
            }
        }
        for (port, driver) in &self.outputs {
            if driver.index() >= self.gates.len() {
                return Err(NetlistError::DanglingOutput {
                    port: port.clone(),
                    driver: *driver,
                });
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Topological order of the *combinational* graph: inputs, constants and
    /// flip-flops are sources; a flip-flop's data input is consumed at the
    /// end of a cycle so it does not create a combinational edge.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if combinational feedback
    /// exists.
    pub fn topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        let n = self.gates.len();
        // Only combinational consumers count: a dff reads its fanin at the
        // clock edge, so it contributes no combinational edge.
        let mut indegree = vec![0usize; n];
        for (id, gate) in self.iter() {
            if gate.kind().is_sequential() {
                continue;
            }
            indegree[id.index()] = gate.fanin().len();
        }
        let fanouts = self.fanouts();
        let mut queue: Vec<GateId> = self
            .iter()
            .filter(|(id, g)| g.kind().is_sequential() || indegree[id.index()] == 0)
            .map(|(id, _)| id)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &sink in &fanouts[id.index()] {
                let sg = &self.gates[sink.index()];
                if sg.kind().is_sequential() {
                    continue;
                }
                indegree[sink.index()] -= 1;
                if indegree[sink.index()] == 0 {
                    queue.push(sink);
                }
            }
        }
        if order.len() != n {
            let stuck = self
                .ids()
                .find(|id| {
                    !self.gates[id.index()].kind().is_sequential() && indegree[id.index()] > 0
                })
                .expect("some gate must be stuck on a cycle");
            return Err(NetlistError::CombinationalCycle { gate: stuck });
        }
        Ok(order)
    }

    /// Combinational depth (level) of every gate: inputs/constants/flops are
    /// level 0, every other gate is `1 + max(level of fanins)`.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`].
    pub fn levels(&self) -> Result<Vec<usize>, NetlistError> {
        let order = self.topo_order()?;
        let mut level = vec![0usize; self.gates.len()];
        for id in order {
            let gate = &self.gates[id.index()];
            if gate.kind().is_sequential() || gate.fanin().is_empty() {
                level[id.index()] = 0;
            } else {
                level[id.index()] = 1 + gate
                    .fanin()
                    .iter()
                    .map(|f| level[f.index()])
                    .max()
                    .unwrap_or(0);
            }
        }
        Ok(level)
    }

    /// True if the design contains no flip-flops.
    pub fn is_combinational(&self) -> bool {
        self.gates.iter().all(|g| !g.kind().is_sequential())
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut hist = vec![0usize; GateKind::ALL.len()];
        let mut cells = 0;
        let mut flops = 0;
        for g in &self.gates {
            hist[g.kind().ordinal()] += 1;
            if g.kind().is_combinational_cell() {
                cells += 1;
            }
            if g.kind().is_sequential() {
                flops += 1;
            }
        }
        NetlistStats {
            total: self.gates.len(),
            cells,
            data_inputs: self.data_inputs.len(),
            mask_inputs: self.mask_inputs.len(),
            outputs: self.outputs.len(),
            flops,
            kind_histogram: hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut n = Netlist::new("ha");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.add_gate(GateKind::Xor, "s", &[a, b]).unwrap();
        let c = n.add_gate(GateKind::And, "c", &[a, b]).unwrap();
        n.add_output("sum", s).unwrap();
        n.add_output("carry", c).unwrap();
        n
    }

    #[test]
    fn build_and_validate() {
        let n = half_adder();
        n.validate().unwrap();
        assert_eq!(n.gate_count(), 4);
        assert_eq!(n.stats().cells, 2);
        assert_eq!(n.stats().data_inputs, 2);
        assert_eq!(n.stats().outputs, 2);
    }

    #[test]
    fn arity_is_enforced_on_add() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let err = n.add_gate(GateKind::And, "g", &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
    }

    #[test]
    fn dangling_fanin_rejected() {
        let mut n = Netlist::new("t");
        let err = n
            .add_gate(GateKind::Not, "g", &[GateId::new(5)])
            .unwrap_err();
        assert!(matches!(err, NetlistError::DanglingFanin { .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("x");
        let _ = n.add_gate(GateKind::Not, "x", &[a]).unwrap();
        let err = n.validate().unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName { .. }));
    }

    #[test]
    fn topo_order_is_consistent() {
        let n = half_adder();
        let order = n.topo_order().unwrap();
        assert_eq!(order.len(), n.gate_count());
        let pos: Vec<usize> = {
            let mut p = vec![0; n.gate_count()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for (id, g) in n.iter() {
            if g.kind().is_sequential() {
                continue;
            }
            for &f in g.fanin() {
                assert!(pos[f.index()] < pos[id.index()], "fanin after sink");
            }
        }
    }

    #[test]
    fn dff_breaks_cycles() {
        let mut n = Netlist::new("counter_bit");
        let q = n.add_dff_placeholder("q");
        let d = n.add_gate(GateKind::Not, "inv", &[q]).unwrap();
        n.connect_dff(q, d);
        n.add_output("out", q).unwrap();
        n.validate().unwrap();
        assert!(!n.is_combinational());
        assert_eq!(n.stats().flops, 1);
    }

    #[test]
    fn combinational_cycle_detected() {
        // Build a cycle by hand: g1 = not g2, g2 = not g1. We must bypass
        // add_gate's dangling check, so build via placeholder misuse is not
        // possible; instead we use two buffers and rewire through connect_dff
        // misuse — not allowed. Simplest: construct directly.
        let mut n = Netlist::new("cyc");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::And, "g1", &[a, a]).unwrap();
        let g2 = n.add_gate(GateKind::And, "g2", &[g1, a]).unwrap();
        // Manually create the cycle through internal representation.
        n.gates[g1.index()] = Gate::new(GateKind::And, "g1", vec![g2, a]);
        let err = n.validate().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle { .. }));
    }

    #[test]
    fn levels_monotone_along_edges() {
        let n = half_adder();
        let levels = n.levels().unwrap();
        for (id, g) in n.iter() {
            if g.kind().is_sequential() {
                continue;
            }
            for &f in g.fanin() {
                assert!(levels[f.index()] < levels[id.index()]);
            }
        }
    }

    #[test]
    fn mask_inputs_tracked_separately() {
        let mut n = Netlist::new("m");
        let a = n.add_input("a");
        let m = n.add_mask_input("m0");
        let g = n.add_gate(GateKind::Xor, "g", &[a, m]).unwrap();
        n.add_output("y", g).unwrap();
        assert_eq!(n.data_inputs(), &[a]);
        assert_eq!(n.mask_inputs(), &[m]);
        assert_eq!(n.stats().mask_inputs, 1);
    }

    #[test]
    fn fanouts_are_inverse_of_fanins() {
        let n = half_adder();
        let fo = n.fanouts();
        for (id, g) in n.iter() {
            for &f in g.fanin() {
                assert!(fo[f.index()].contains(&id));
            }
        }
    }
}
