//! Textual netlist format: a small structural-Verilog subset.
//!
//! The grammar (whitespace-insensitive, `//` line comments):
//!
//! ```text
//! module <name> ( <port> [, <port>]* ) ;
//!   input  a, b, c ;
//!   mask_input m0, m1 ;           // extension: mask randomness ports
//!   output y, z ;
//!   wire   w1, w2 ;               // optional, informational only
//!   <kind> <inst> ( <out> , <in>* ) ;
//!   ...
//! endmodule
//! ```
//!
//! `<kind>` is one of `buf not and or nand nor xor xnor mux dff const0
//! const1`. The first terminal of an instance is the driven wire; the rest
//! are inputs. `mux` pin order is `(out, sel, a, b)` computing
//! `out = sel ? a : b`; `dff` is `(q, d)` with an implicit global clock.
//!
//! # Example
//!
//! ```
//! use polaris_netlist::{parse_netlist, write_netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//! module ha (a, b, s, c);
//!   input a, b;
//!   output s, c;
//!   xor x1 (s, a, b);
//!   and a1 (c, a, b);
//! endmodule";
//! let n = parse_netlist(src)?;
//! let text = write_netlist(&n);
//! let n2 = parse_netlist(&text)?;
//! // The writer adds one buffer per output port, otherwise structure is kept.
//! assert_eq!(n2.gate_count(), n.gate_count() + n.outputs().len());
//! assert_eq!(n2.outputs().len(), n.outputs().len());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

/// Error produced when parsing a textual netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token (0 when unknown).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Token {
    text: String,
    line: usize,
}

fn tokenize(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let code = match raw.find("//") {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut cur = String::new();
        for ch in code.chars() {
            if ch.is_alphanumeric() || ch == '_' || ch == '$' || ch == '.' {
                cur.push(ch);
            } else {
                if !cur.is_empty() {
                    tokens.push(Token {
                        text: std::mem::take(&mut cur),
                        line,
                    });
                }
                if !ch.is_whitespace() {
                    tokens.push(Token {
                        text: ch.to_string(),
                        line,
                    });
                }
            }
        }
        if !cur.is_empty() {
            tokens.push(Token { text: cur, line });
        }
    }
    tokens
}

struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
}

impl Cursor {
    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, text: &str) -> Result<Token, ParseError> {
        match self.next() {
            Some(t) if t.text == text => Ok(t),
            Some(t) => Err(err(
                t.line,
                format!("expected `{text}`, found `{}`", t.text),
            )),
            None => Err(err(0, format!("expected `{text}`, found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<Token, ParseError> {
        match self.next() {
            Some(t)
                if t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_') =>
            {
                Ok(t)
            }
            Some(t) => Err(err(
                t.line,
                format!("expected identifier, found `{}`", t.text),
            )),
            None => Err(err(0, "expected identifier, found end of input")),
        }
    }

    /// Parses `name [, name]* ;` and returns the names.
    fn name_list(&mut self) -> Result<Vec<Token>, ParseError> {
        let mut names = vec![self.ident()?];
        loop {
            match self.next() {
                Some(t) if t.text == "," => names.push(self.ident()?),
                Some(t) if t.text == ";" => return Ok(names),
                Some(t) => {
                    return Err(err(
                        t.line,
                        format!("expected `,` or `;`, found `{}`", t.text),
                    ))
                }
                None => return Err(err(0, "unterminated declaration")),
            }
        }
    }
}

/// Intermediate instance record before wire resolution.
struct RawInstance {
    kind: GateKind,
    name: String,
    out: String,
    ins: Vec<String>,
    line: usize,
}

/// Parses the textual format into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntactic or semantic
/// problem (unknown gate kind, undriven wire, duplicate driver, …). The
/// resulting netlist is additionally passed through
/// [`Netlist::validate`][crate::Netlist::validate].
pub fn parse_netlist(src: &str) -> Result<Netlist, ParseError> {
    let mut cur = Cursor {
        tokens: tokenize(src),
        pos: 0,
    };
    cur.expect("module")?;
    let mod_name = cur.ident()?;
    cur.expect("(")?;
    // Port list (names only; direction comes from the declarations below).
    loop {
        match cur.next() {
            Some(t) if t.text == ")" => break,
            Some(t) if t.text == "," => continue,
            Some(t)
                if t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_') => {}
            Some(t) => return Err(err(t.line, format!("unexpected `{}` in port list", t.text))),
            None => return Err(err(0, "unterminated port list")),
        }
    }
    cur.expect(";")?;

    let mut inputs: Vec<Token> = Vec::new();
    let mut mask_inputs: Vec<Token> = Vec::new();
    let mut outputs: Vec<Token> = Vec::new();
    let mut instances: Vec<RawInstance> = Vec::new();

    loop {
        let Some(tok) = cur.next() else {
            return Err(err(0, "missing `endmodule`"));
        };
        match tok.text.as_str() {
            "endmodule" => break,
            "input" => inputs.extend(cur.name_list()?),
            "mask_input" => mask_inputs.extend(cur.name_list()?),
            "output" => outputs.extend(cur.name_list()?),
            "wire" => {
                cur.name_list()?; // informational; wires are inferred from use
            }
            kw => {
                let Some(kind) = GateKind::from_keyword(kw) else {
                    return Err(err(tok.line, format!("unknown gate kind `{kw}`")));
                };
                if kind == GateKind::Input {
                    return Err(err(tok.line, "`input` cannot be instantiated"));
                }
                let inst = cur.ident()?;
                cur.expect("(")?;
                let out = cur.ident()?;
                let mut ins = Vec::new();
                loop {
                    match cur.next() {
                        Some(t) if t.text == "," => ins.push(cur.ident()?.text),
                        Some(t) if t.text == ")" => break,
                        Some(t) => {
                            return Err(err(
                                t.line,
                                format!("expected `,` or `)`, found `{}`", t.text),
                            ))
                        }
                        None => return Err(err(0, "unterminated instance")),
                    }
                }
                cur.expect(";")?;
                instances.push(RawInstance {
                    kind,
                    name: inst.text,
                    out: out.text,
                    ins,
                    line: tok.line,
                });
            }
        }
    }

    // Wire resolution: every wire has exactly one driver (an input port or an
    // instance output).
    let mut netlist = Netlist::new(mod_name.text);
    let mut driver: HashMap<String, GateId> = HashMap::new();
    for t in &inputs {
        let id = netlist.add_input(t.text.clone());
        if driver.insert(t.text.clone(), id).is_some() {
            return Err(err(t.line, format!("wire `{}` has two drivers", t.text)));
        }
    }
    for t in &mask_inputs {
        let id = netlist.add_mask_input(t.text.clone());
        if driver.insert(t.text.clone(), id).is_some() {
            return Err(err(t.line, format!("wire `{}` has two drivers", t.text)));
        }
    }

    // Two passes: first reserve ids for every instance output (so feedback
    // through dffs resolves), then connect fanins.
    let mut inst_ids: Vec<GateId> = Vec::with_capacity(instances.len());
    for inst in &instances {
        let id = netlist.add_placeholder(inst.kind, inst.name.clone());
        inst_ids.push(id);
        if driver.insert(inst.out.clone(), id).is_some() {
            return Err(err(
                inst.line,
                format!("wire `{}` has two drivers", inst.out),
            ));
        }
    }
    for (inst, &id) in instances.iter().zip(&inst_ids) {
        if inst.kind.is_const() {
            if !inst.ins.is_empty() {
                return Err(err(inst.line, "constants take no inputs"));
            }
            continue;
        }
        let mut fanin = Vec::with_capacity(inst.ins.len());
        for w in &inst.ins {
            let Some(&d) = driver.get(w) else {
                return Err(err(inst.line, format!("wire `{w}` is never driven")));
            };
            fanin.push(d);
        }
        netlist
            .replace_fanin(id, inst.kind, &fanin)
            .map_err(|e| err(inst.line, e.to_string()))?;
    }
    for t in &outputs {
        let Some(&d) = driver.get(&t.text) else {
            return Err(err(t.line, format!("output `{}` is never driven", t.text)));
        };
        netlist
            .add_output(t.text.clone(), d)
            .map_err(|e| err(t.line, e.to_string()))?;
    }

    netlist
        .validate()
        .map_err(|e| err(0, format!("invalid netlist: {e}")))?;
    Ok(netlist)
}

/// Serializes a netlist back to the textual format accepted by
/// [`parse_netlist`].
///
/// Gate instance names are used as the driven wire names (`<name>` drives
/// wire `n_<id>` when the instance name is empty).
pub fn write_netlist(netlist: &Netlist) -> String {
    use std::fmt::Write as _;

    let mut wire_name: Vec<String> = Vec::with_capacity(netlist.gate_count());
    for (id, gate) in netlist.iter() {
        if gate.name().is_empty() {
            wire_name.push(format!("n_{}", id.index()));
        } else {
            wire_name.push(gate.name().to_string());
        }
    }

    let mut s = String::new();
    let mut ports: Vec<String> = Vec::new();
    for &i in netlist.data_inputs() {
        ports.push(wire_name[i.index()].clone());
    }
    for &i in netlist.mask_inputs() {
        ports.push(wire_name[i.index()].clone());
    }
    for (p, _) in netlist.outputs() {
        ports.push(format!("{p}_po"));
    }
    let _ = writeln!(s, "module {} ({});", netlist.name(), ports.join(", "));

    let fmt_list = |ids: &[GateId]| -> String {
        ids.iter()
            .map(|i| wire_name[i.index()].clone())
            .collect::<Vec<_>>()
            .join(", ")
    };
    if !netlist.data_inputs().is_empty() {
        let _ = writeln!(s, "  input {};", fmt_list(netlist.data_inputs()));
    }
    if !netlist.mask_inputs().is_empty() {
        let _ = writeln!(s, "  mask_input {};", fmt_list(netlist.mask_inputs()));
    }
    if !netlist.outputs().is_empty() {
        let outs: Vec<String> = netlist
            .outputs()
            .iter()
            .map(|(p, _)| format!("{p}_po"))
            .collect();
        let _ = writeln!(s, "  output {};", outs.join(", "));
    }
    for (id, gate) in netlist.iter() {
        if gate.kind().is_input() {
            continue;
        }
        let out = &wire_name[id.index()];
        if gate.fanin().is_empty() {
            let _ = writeln!(s, "  {} i_{} ({});", gate.kind().keyword(), id.index(), out);
        } else {
            let _ = writeln!(
                s,
                "  {} i_{} ({}, {});",
                gate.kind().keyword(),
                id.index(),
                out,
                fmt_list(gate.fanin())
            );
        }
    }
    // Output ports are emitted as buffers so the port wire has a driver.
    for (p, d) in netlist.outputs() {
        let _ = writeln!(s, "  buf o_{p} ({p}_po, {});", wire_name[d.index()]);
    }
    s.push_str("endmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    const HA: &str = "
// half adder
module ha (a, b, s, c);
  input a, b;
  output s, c;
  wire w0;
  xor x1 (s, a, b);
  and a1 (c, a, b);
endmodule";

    #[test]
    fn parses_half_adder() {
        let n = parse_netlist(HA).unwrap();
        assert_eq!(n.name(), "ha");
        assert_eq!(n.gate_count(), 4);
        assert_eq!(n.outputs().len(), 2);
        assert_eq!(n.stats().cells, 2);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let n = parse_netlist(HA).unwrap();
        let text = write_netlist(&n);
        let n2 = parse_netlist(&text).unwrap();
        // The writer adds one buf per output port.
        assert_eq!(n2.gate_count(), n.gate_count() + n.outputs().len());
        assert_eq!(n2.outputs().len(), n.outputs().len());
        assert_eq!(n2.data_inputs().len(), n.data_inputs().len());
    }

    #[test]
    fn mask_inputs_roundtrip() {
        let src = "
module m (a, m0, y);
  input a;
  mask_input m0;
  output y;
  xor g (y, a, m0);
endmodule";
        let n = parse_netlist(src).unwrap();
        assert_eq!(n.mask_inputs().len(), 1);
        let n2 = parse_netlist(&write_netlist(&n)).unwrap();
        assert_eq!(n2.mask_inputs().len(), 1);
    }

    #[test]
    fn dff_feedback_parses() {
        let src = "
module c (y);
  output y;
  dff r (q, d);
  not n1 (d, q);
  buf b1 (y, q);
endmodule";
        let n = parse_netlist(src).unwrap();
        assert!(!n.is_combinational());
        n.validate().unwrap();
    }

    #[test]
    fn unknown_kind_rejected() {
        let src = "module m (y); output y; frob g (y); endmodule";
        let e = parse_netlist(src).unwrap_err();
        assert!(e.message.contains("unknown gate kind"));
    }

    #[test]
    fn undriven_wire_rejected() {
        let src = "module m (y); output y; not g (y, nothere); endmodule";
        let e = parse_netlist(src).unwrap_err();
        assert!(e.message.contains("never driven"));
    }

    #[test]
    fn double_driver_rejected() {
        let src = "
module m (a, y);
  input a;
  output y;
  not g1 (y, a);
  buf g2 (y, a);
endmodule";
        let e = parse_netlist(src).unwrap_err();
        assert!(e.message.contains("two drivers"));
    }

    #[test]
    fn mux_and_const_parse() {
        let src = "
module m (s, a, y);
  input s, a;
  output y;
  const1 k (one);
  mux g (y, s, a, one);
endmodule";
        let n = parse_netlist(src).unwrap();
        let mux = n
            .iter()
            .find(|(_, g)| g.kind() == GateKind::Mux)
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(n.gate(mux).fanin().len(), 3);
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = "module m (y);\n output y;\n frob g (y);\nendmodule";
        let e = parse_netlist(src).unwrap_err();
        assert_eq!(e.line, 3);
    }
}
