//! ISCAS `.bench` format support.
//!
//! The classic benchmark distribution format (ISCAS-85/89, used by ABC,
//! Atalanta, HOPE, …):
//!
//! ```text
//! # c17
//! INPUT(G1)
//! OUTPUT(G22)
//! G10 = NAND(G1, G3)
//! G22 = NAND(G10, G16)
//! G5  = DFF(G4)
//! ```
//!
//! Supported functions: `AND OR NAND NOR XOR XNOR NOT BUF BUFF DFF MUX
//! CONST0 CONST1`, plus the `MASK_INPUT(...)` extension mirroring the
//! structural-Verilog subset. Round-trips through [`write_bench`].

use std::collections::HashMap;

use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;
use crate::parser::ParseError;

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses `.bench` text into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for unknown
/// functions, undriven signals, duplicate drivers or arity violations.
pub fn parse_bench(src: &str) -> Result<Netlist, ParseError> {
    struct RawGate {
        out: String,
        func: String,
        ins: Vec<String>,
        line: usize,
    }
    let mut inputs: Vec<(String, usize)> = Vec::new();
    let mut mask_inputs: Vec<(String, usize)> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut gates: Vec<RawGate> = Vec::new();
    let mut name = "bench".to_string();

    for (i, raw) in src.lines().enumerate() {
        let ln = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            // First comment conventionally names the circuit.
            if name == "bench" {
                let c = comment.trim();
                if !c.is_empty() {
                    name = c.split_whitespace().next().unwrap_or("bench").to_string();
                }
            }
            continue;
        }
        let directive = |prefix: &str, line: &str| -> Option<String> {
            line.strip_prefix(prefix).and_then(|rest| {
                let rest = rest.trim_start();
                rest.strip_prefix('(')
                    .and_then(|r| r.strip_suffix(')'))
                    .map(|s| s.trim().to_string())
            })
        };
        if let Some(sig) = directive("INPUT", line) {
            inputs.push((sig, ln));
            continue;
        }
        if let Some(sig) = directive("MASK_INPUT", line) {
            mask_inputs.push((sig, ln));
            continue;
        }
        if let Some(sig) = directive("OUTPUT", line) {
            outputs.push((sig, ln));
            continue;
        }
        // `out = FUNC(in, in, ...)`
        let Some((lhs, rhs)) = line.split_once('=') else {
            return Err(err(ln, format!("unrecognized line `{line}`")));
        };
        let out = lhs.trim().to_string();
        let rhs = rhs.trim();
        let Some(paren) = rhs.find('(') else {
            return Err(err(ln, "expected `FUNC(args)` on right-hand side"));
        };
        let func = rhs[..paren].trim().to_uppercase();
        let Some(args) = rhs[paren + 1..].strip_suffix(')') else {
            return Err(err(ln, "missing closing parenthesis"));
        };
        let ins: Vec<String> = args
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        gates.push(RawGate {
            out,
            func,
            ins,
            line: ln,
        });
    }

    let kind_of = |func: &str, line: usize| -> Result<GateKind, ParseError> {
        Ok(match func {
            "AND" => GateKind::And,
            "OR" => GateKind::Or,
            "NAND" => GateKind::Nand,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "NOT" | "INV" => GateKind::Not,
            "BUF" | "BUFF" => GateKind::Buf,
            "DFF" => GateKind::Dff,
            "MUX" => GateKind::Mux,
            "CONST0" => GateKind::Const0,
            "CONST1" => GateKind::Const1,
            other => return Err(err(line, format!("unknown function `{other}`"))),
        })
    };

    let mut netlist = Netlist::new(name);
    let mut driver: HashMap<String, GateId> = HashMap::new();
    for (sig, ln) in &inputs {
        let id = netlist.add_input(sig.clone());
        if driver.insert(sig.clone(), id).is_some() {
            return Err(err(*ln, format!("signal `{sig}` has two drivers")));
        }
    }
    for (sig, ln) in &mask_inputs {
        let id = netlist.add_mask_input(sig.clone());
        if driver.insert(sig.clone(), id).is_some() {
            return Err(err(*ln, format!("signal `{sig}` has two drivers")));
        }
    }
    // Reserve ids first so feedback through DFFs resolves.
    let mut ids = Vec::with_capacity(gates.len());
    for g in &gates {
        let kind = kind_of(&g.func, g.line)?;
        let id = netlist.add_placeholder(kind, g.out.clone());
        if driver.insert(g.out.clone(), id).is_some() {
            return Err(err(g.line, format!("signal `{}` has two drivers", g.out)));
        }
        ids.push((id, kind));
    }
    for (g, (id, kind)) in gates.iter().zip(&ids) {
        let mut fanin = Vec::with_capacity(g.ins.len());
        for sig in &g.ins {
            let Some(&d) = driver.get(sig) else {
                return Err(err(g.line, format!("signal `{sig}` is never driven")));
            };
            fanin.push(d);
        }
        netlist
            .replace_fanin(*id, *kind, &fanin)
            .map_err(|e| err(g.line, e.to_string()))?;
    }
    for (sig, ln) in &outputs {
        let Some(&d) = driver.get(sig) else {
            return Err(err(*ln, format!("output `{sig}` is never driven")));
        };
        netlist
            .add_output(sig.clone(), d)
            .map_err(|e| err(*ln, e.to_string()))?;
    }
    netlist
        .validate()
        .map_err(|e| err(0, format!("invalid netlist: {e}")))?;
    Ok(netlist)
}

/// Serializes a netlist to `.bench` text, parseable by [`parse_bench`].
pub fn write_bench(netlist: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# {}", netlist.name());
    let sig = |id: GateId| -> String {
        let g = netlist.gate(id);
        if g.name().is_empty() {
            format!("N{}", id.index())
        } else {
            g.name().to_string()
        }
    };
    for &i in netlist.data_inputs() {
        let _ = writeln!(s, "INPUT({})", sig(i));
    }
    for &i in netlist.mask_inputs() {
        let _ = writeln!(s, "MASK_INPUT({})", sig(i));
    }
    for (_, d) in netlist.outputs() {
        let _ = writeln!(s, "OUTPUT({})", sig(*d));
    }
    for (id, gate) in netlist.iter() {
        if gate.kind().is_input() {
            continue;
        }
        let func = match gate.kind() {
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
            GateKind::Dff => "DFF",
            GateKind::Mux => "MUX",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Input => unreachable!("inputs skipped"),
        };
        let args: Vec<String> = gate.fanin().iter().map(|&f| sig(f)).collect();
        let _ = writeln!(s, "{} = {func}({})", sig(id), args.join(", "));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "
# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn parses_c17() {
        let n = parse_bench(C17).unwrap();
        assert_eq!(n.name(), "c17");
        assert_eq!(n.stats().cells, 6);
        assert_eq!(n.data_inputs().len(), 5);
        assert_eq!(n.outputs().len(), 2);
    }

    #[test]
    fn bench_matches_builtin_c17() {
        // Same functionality as the hand-built c17 generator.
        use polaris_sim_free_check::equivalent;
        let a = parse_bench(C17).unwrap();
        let b = crate::generators::iscas_c17();
        assert!(equivalent(&a, &b));
    }

    /// Tiny combinational equivalence check via exhaustive truth tables —
    /// test-local, no simulator dependency (netlist is below sim in the
    /// crate graph).
    mod polaris_sim_free_check {
        use crate::gate::GateKind;
        use crate::netlist::Netlist;

        fn eval(n: &Netlist, assignment: u32) -> Vec<bool> {
            let order = n.topo_order().unwrap();
            let mut v = vec![false; n.gate_count()];
            for (i, &id) in n.data_inputs().iter().enumerate() {
                v[id.index()] = assignment >> i & 1 == 1;
            }
            for id in order {
                let g = n.gate(id);
                let f = |k: usize| v[g.fanin()[k].index()];
                let all = || g.fanin().iter().map(|x| v[x.index()]);
                v[id.index()] = match g.kind() {
                    GateKind::Input => continue,
                    GateKind::Const0 => false,
                    GateKind::Const1 => true,
                    GateKind::Buf => f(0),
                    GateKind::Not => !f(0),
                    GateKind::And => all().all(|x| x),
                    GateKind::Or => all().any(|x| x),
                    GateKind::Nand => !all().all(|x| x),
                    GateKind::Nor => !all().any(|x| x),
                    GateKind::Xor => all().fold(false, |a, b| a ^ b),
                    GateKind::Xnor => !all().fold(false, |a, b| a ^ b),
                    GateKind::Mux => {
                        if f(0) {
                            f(1)
                        } else {
                            f(2)
                        }
                    }
                    GateKind::Dff => false,
                };
            }
            n.outputs().iter().map(|(_, d)| v[d.index()]).collect()
        }

        pub fn equivalent(a: &Netlist, b: &Netlist) -> bool {
            let k = a.data_inputs().len();
            if k != b.data_inputs().len() || k > 16 {
                return false;
            }
            (0..1u32 << k).all(|x| eval(a, x) == eval(b, x))
        }
    }

    #[test]
    fn roundtrip_through_write_bench() {
        let n = parse_bench(C17).unwrap();
        let text = write_bench(&n);
        let back = parse_bench(&text).unwrap();
        assert_eq!(n.stats().cells, back.stats().cells);
        assert_eq!(n.outputs().len(), back.outputs().len());
        assert!(polaris_sim_free_check::equivalent(&n, &back));
    }

    #[test]
    fn dff_feedback_supported() {
        let src = "
# counter
OUTPUT(Q)
Q = DFF(D)
D = NOT(Q)
";
        let n = parse_bench(src).unwrap();
        assert_eq!(n.stats().flops, 1);
        n.validate().unwrap();
    }

    #[test]
    fn mask_input_extension() {
        let src = "
INPUT(A)
MASK_INPUT(M)
OUTPUT(Y)
Y = XOR(A, M)
";
        let n = parse_bench(src).unwrap();
        assert_eq!(n.mask_inputs().len(), 1);
        let text = write_bench(&n);
        assert!(text.contains("MASK_INPUT(M)"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "INPUT(A)\nOUTPUT(Y)\nY = FROB(A)\n";
        let e = parse_bench(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("FROB"));

        let undriven = "OUTPUT(Y)\nY = NOT(NOPE)\n";
        let e = parse_bench(undriven).unwrap_err();
        assert!(e.message.contains("never driven"));

        let double = "INPUT(A)\nOUTPUT(Y)\nY = NOT(A)\nY = BUFF(A)\n";
        let e = parse_bench(double).unwrap_err();
        assert!(e.message.contains("two drivers"));
    }

    #[test]
    fn generated_designs_roundtrip() {
        let d = crate::generators::des3(1, 3);
        let text = write_bench(&d);
        let back = parse_bench(&text).unwrap();
        assert_eq!(d.gate_count(), back.gate_count());
        assert_eq!(d.stats().kind_histogram, back.stats().kind_histogram);
    }
}
