//! `polaris-obs` — structured tracing for the POLARIS campaign stack.
//!
//! A hand-rolled, zero-dependency event/span model (in the offline-build
//! spirit of the `polaris-dist` wire codec): instrumented engines report
//! typed [`Payload`]s to a [`Recorder`], which stamps each one with a
//! monotonic timestamp and a thread ordinal. Two recorders ship:
//!
//! * [`NullRecorder`] — the default. `enabled()` is `false`, so every
//!   instrumentation site skips its clock reads and event construction
//!   entirely: campaigns without tracing pay nothing.
//! * [`JsonlRecorder`] — buffers one JSON line per event in memory;
//!   [`JsonlRecorder::to_jsonl`] hands the trace back for writing to disk
//!   (`polaris-cli … --trace-out FILE`).
//!
//! # Determinism contract
//!
//! Recording is strictly observational. Instrumented engines emit events
//! *outside* their fold paths and never branch on recorder state except to
//! skip timing — so campaign outcomes with recording on vs off are
//! byte-identical at every thread count, lane width, and partitioning
//! (proven by the workspace's `obs_neutrality` test suite).

mod event;
mod json;
mod summary;

pub use event::{parse_trace, Event, Payload, PopulationTag, Verdict};
pub use json::{JsonValue, JsonWriter, TraceError, MAX_FIELDS, MAX_LINE_BYTES, MAX_STRING_BYTES};
pub use summary::{AuditRow, CheckpointRow, PhaseTotals, TraceSummary, WorkerRow};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// An event sink instrumented engines report to.
///
/// Implementations must be cheap when disabled: every instrumentation site
/// checks [`Recorder::enabled`] before doing any timing work, so a recorder
/// that returns `false` makes the instrumentation free.
pub trait Recorder: Send + Sync {
    /// Whether instrumentation sites should measure and report at all.
    fn enabled(&self) -> bool;

    /// Accepts one event payload. Called from arbitrary worker threads;
    /// implementations stamp time and thread identity themselves so the
    /// emitting engine never touches a clock for a disabled recorder.
    fn record(&self, payload: Payload);
}

/// Shared handle to a recorder, for owned contexts (stopping rules, fleet
/// jobs) that outlive a borrow.
pub type SharedRecorder = Arc<dyn Recorder>;

/// The zero-overhead default recorder: disabled, drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _payload: Payload) {}
}

/// A fresh [`SharedRecorder`] wrapping a [`NullRecorder`].
pub fn shared_null() -> SharedRecorder {
    Arc::new(NullRecorder)
}

/// Process-wide worker ordinals: small, stable per thread, allocated on
/// first use. (Rust's `ThreadId` has no stable integer form on this
/// toolchain, and OS thread ids would tie traces to the platform.)
static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// This thread's process-local trace ordinal.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

/// Buffering JSONL recorder: every event becomes one line in an in-memory
/// buffer, stamped with monotonic nanoseconds since the recorder's creation
/// and the recording thread's ordinal.
#[derive(Debug)]
pub struct JsonlRecorder {
    epoch: Instant,
    buf: Mutex<String>,
}

impl JsonlRecorder {
    /// Creates an empty recorder; its creation instant is the trace epoch.
    pub fn new() -> Self {
        JsonlRecorder {
            epoch: Instant::now(),
            buf: Mutex::new(String::new()),
        }
    }

    /// The buffered trace, one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        self.lock().clone()
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, String> {
        // A worker panic elsewhere must not lose the trace collected so far.
        self.buf.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for JsonlRecorder {
    fn default() -> Self {
        JsonlRecorder::new()
    }
}

impl Recorder for JsonlRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, payload: Payload) {
        let event = Event {
            t_ns: u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            thread: thread_ordinal(),
            payload,
        };
        let line = event.encode();
        let mut buf = self.lock();
        buf.push_str(&line);
        buf.push('\n');
    }
}

/// An engine phase measured inside one shard span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Counter-derived RNG streams: data vectors, mask refresh, noise.
    Rng = 0,
    /// Gate evaluation and toggle counting.
    Simulate = 1,
    /// Energy emission and sink recording.
    Accumulate = 2,
}

/// Accumulates per-phase nanoseconds across the blocks of one shard.
///
/// Built around explicit [`PhaseTimer::begin`]/[`PhaseTimer::end`] pairs so
/// instrumented loops never fight the borrow checker, and fully inert when
/// disabled: `begin` returns `None` without reading the clock, and `end`
/// with `None` is a no-op.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimer {
    enabled: bool,
    nanos: [u64; 3],
}

impl PhaseTimer {
    /// A timer that measures only when `enabled`.
    pub fn new(enabled: bool) -> Self {
        PhaseTimer {
            enabled,
            nanos: [0; 3],
        }
    }

    /// The inert timer untraced paths pass through the engine.
    pub fn disabled() -> Self {
        PhaseTimer::new(false)
    }

    /// Whether this timer measures at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a phase measurement; `None` (no clock read) when disabled.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a measurement begun with [`PhaseTimer::begin`], attributing the
    /// elapsed time to `phase`.
    #[inline]
    pub fn end(&mut self, phase: Phase, begun: Option<Instant>) {
        if let Some(t0) = begun {
            self.nanos[phase as usize] +=
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
    }

    /// Accumulated nanoseconds of `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.record(Payload::QueueDepth {
            depth: 1,
            jobs_remaining: 1,
        });
    }

    #[test]
    fn jsonl_recorder_buffers_parseable_lines() {
        let r = JsonlRecorder::new();
        assert!(r.is_empty());
        r.record(Payload::QueueDepth {
            depth: 3,
            jobs_remaining: 2,
        });
        r.record(Payload::MergeDone {
            parts: 1,
            shards: 4,
            wall_ns: 99,
        });
        let text = r.to_jsonl();
        let events = parse_trace(&text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].payload.kind(), "queue_depth");
        assert_eq!(events[1].payload.kind(), "merge_done");
        // Monotonic stamps: the second event is not earlier than the first.
        assert!(events[1].t_ns >= events[0].t_ns);
        assert_eq!(r.len(), text.len());
    }

    #[test]
    fn recorder_is_usable_across_threads() {
        let r = Arc::new(JsonlRecorder::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    r.record(Payload::QueueDepth {
                        depth: 0,
                        jobs_remaining: 0,
                    });
                });
            }
        });
        let events = parse_trace(&r.to_jsonl()).unwrap();
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn disabled_phase_timer_never_reads_the_clock() {
        let mut t = PhaseTimer::disabled();
        assert!(t.begin().is_none());
        t.end(Phase::Rng, None);
        assert_eq!(t.nanos(Phase::Rng), 0);
    }

    #[test]
    fn enabled_phase_timer_accumulates() {
        let mut t = PhaseTimer::new(true);
        let b = t.begin();
        assert!(b.is_some());
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.end(Phase::Simulate, b);
        assert!(t.nanos(Phase::Simulate) >= 1_000_000);
        assert_eq!(t.nanos(Phase::Rng), 0);
    }

    #[test]
    fn thread_ordinals_are_distinct() {
        let here = thread_ordinal();
        let there = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, there);
        assert_eq!(here, thread_ordinal());
    }
}
