//! `polaris-obs` — structured tracing for the POLARIS campaign stack.
//!
//! A hand-rolled, zero-dependency event/span model (in the offline-build
//! spirit of the `polaris-dist` wire codec): instrumented engines report
//! typed [`Payload`]s to a [`Recorder`], which stamps each one with a
//! monotonic timestamp and a thread ordinal. Two recorders ship:
//!
//! * [`NullRecorder`] — the default. `enabled()` is `false`, so every
//!   instrumentation site skips its clock reads and event construction
//!   entirely: campaigns without tracing pay nothing.
//! * [`JsonlRecorder`] — buffers one JSON line per event in memory;
//!   [`JsonlRecorder::to_jsonl`] hands the trace back for writing to disk
//!   (`polaris-cli … --trace-out FILE`).
//!
//! # Determinism contract
//!
//! Recording is strictly observational. Instrumented engines emit events
//! *outside* their fold paths and never branch on recorder state except to
//! skip timing — so campaign outcomes with recording on vs off are
//! byte-identical at every thread count, lane width, and partitioning
//! (proven by the workspace's `obs_neutrality` test suite).

mod event;
mod json;
mod summary;

pub use event::{parse_trace, Event, Payload, PopulationTag, Verdict};
pub use json::{JsonValue, JsonWriter, TraceError, MAX_FIELDS, MAX_LINE_BYTES, MAX_STRING_BYTES};
pub use summary::{AuditRow, CheckpointRow, PhaseTotals, TraceSummary, WorkerRow};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// An event sink instrumented engines report to.
///
/// Implementations must be cheap when disabled: every instrumentation site
/// checks [`Recorder::enabled`] before doing any timing work, so a recorder
/// that returns `false` makes the instrumentation free.
pub trait Recorder: Send + Sync {
    /// Whether instrumentation sites should measure and report at all.
    fn enabled(&self) -> bool;

    /// Accepts one event payload. Called from arbitrary worker threads;
    /// implementations stamp time and thread identity themselves so the
    /// emitting engine never touches a clock for a disabled recorder.
    fn record(&self, payload: Payload);
}

/// Shared handle to a recorder, for owned contexts (stopping rules, fleet
/// jobs) that outlive a borrow.
pub type SharedRecorder = Arc<dyn Recorder>;

/// The zero-overhead default recorder: disabled, drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _payload: Payload) {}
}

/// A fresh [`SharedRecorder`] wrapping a [`NullRecorder`].
pub fn shared_null() -> SharedRecorder {
    Arc::new(NullRecorder)
}

/// Process-wide worker ordinals: small, stable per thread, allocated on
/// first use. (Rust's `ThreadId` has no stable integer form on this
/// toolchain, and OS thread ids would tie traces to the platform.)
static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// This thread's process-local trace ordinal.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

/// Where a [`JsonlRecorder`] puts its encoded lines.
enum JsonlSink {
    /// Everything in one in-memory `String`, handed back by
    /// [`JsonlRecorder::to_jsonl`] at the end of the run.
    Buffer(String),
    /// Every line written (and flushed) to the writer as it is recorded, so
    /// a killed or OOM'd long-running process loses at most the line being
    /// written — and resident memory stays O(1) in the trace length.
    Stream {
        writer: Box<dyn std::io::Write + Send>,
        /// Bytes successfully written so far.
        written: usize,
        /// First write/flush error, deferred to [`JsonlRecorder::flush`]
        /// so `record` stays infallible for the engines.
        error: Option<String>,
    },
}

/// JSONL recorder: every event becomes one line — stamped with monotonic
/// nanoseconds since the recorder's creation and the recording thread's
/// ordinal — in either an in-memory buffer ([`JsonlRecorder::new`]) or an
/// incremental writer ([`JsonlRecorder::streaming`]).
///
/// Both modes emit exactly [`Event::encode`] plus a newline per event, so
/// the streamed bytes are byte-identical to the buffered trace for the same
/// event sequence.
pub struct JsonlRecorder {
    epoch: Instant,
    sink: Mutex<JsonlSink>,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (mode, len) = match &*self.lock() {
            JsonlSink::Buffer(buf) => ("buffer", buf.len()),
            JsonlSink::Stream { written, .. } => ("stream", *written),
        };
        f.debug_struct("JsonlRecorder")
            .field("mode", &mode)
            .field("len", &len)
            .finish()
    }
}

impl JsonlRecorder {
    /// Creates an empty buffering recorder; its creation instant is the
    /// trace epoch.
    pub fn new() -> Self {
        JsonlRecorder {
            epoch: Instant::now(),
            sink: Mutex::new(JsonlSink::Buffer(String::new())),
        }
    }

    /// Creates a streaming recorder: every recorded event is written (and
    /// flushed) to `writer` immediately instead of buffered, so the trace
    /// of a long-running process survives a crash and memory use does not
    /// grow with the trace. I/O errors are deferred to
    /// [`JsonlRecorder::flush`]; after the first error further events are
    /// dropped.
    pub fn streaming(writer: Box<dyn std::io::Write + Send>) -> Self {
        JsonlRecorder {
            epoch: Instant::now(),
            sink: Mutex::new(JsonlSink::Stream {
                writer,
                written: 0,
                error: None,
            }),
        }
    }

    /// The buffered trace, one JSON object per line. A streaming recorder
    /// has already handed its lines to the writer, so this returns the
    /// empty string for it.
    pub fn to_jsonl(&self) -> String {
        match &*self.lock() {
            JsonlSink::Buffer(buf) => buf.clone(),
            JsonlSink::Stream { .. } => String::new(),
        }
    }

    /// Number of bytes buffered (or, in streaming mode, written so far).
    pub fn len(&self) -> usize {
        match &*self.lock() {
            JsonlSink::Buffer(buf) => buf.len(),
            JsonlSink::Stream { written, .. } => *written,
        }
    }

    /// True when nothing has been recorded (or streamed) yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes a streaming writer and surfaces any write error deferred by
    /// [`Recorder::record`]. A no-op `Ok` for a buffering recorder.
    pub fn flush(&self) -> Result<(), String> {
        match &mut *self.lock() {
            JsonlSink::Buffer(_) => Ok(()),
            JsonlSink::Stream { writer, error, .. } => match error.take() {
                Some(e) => Err(e),
                None => writer.flush().map_err(|e| format!("trace flush: {e}")),
            },
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JsonlSink> {
        // A worker panic elsewhere must not lose the trace collected so far.
        self.sink.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for JsonlRecorder {
    fn default() -> Self {
        JsonlRecorder::new()
    }
}

impl Recorder for JsonlRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, payload: Payload) {
        let event = Event {
            t_ns: u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            thread: thread_ordinal(),
            payload,
        };
        let line = event.encode();
        match &mut *self.lock() {
            JsonlSink::Buffer(buf) => {
                buf.push_str(&line);
                buf.push('\n');
            }
            JsonlSink::Stream {
                writer,
                written,
                error,
            } => {
                if error.is_some() {
                    return;
                }
                // One write_all + flush per line: the byte stream is the
                // exact buffered format, durable at line granularity.
                let res = writer
                    .write_all(line.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush());
                match res {
                    Ok(()) => *written += line.len() + 1,
                    Err(e) => *error = Some(format!("trace write: {e}")),
                }
            }
        }
    }
}

/// An engine phase measured inside one shard span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Counter-derived RNG streams: data vectors, mask refresh, noise.
    Rng = 0,
    /// Gate evaluation and toggle counting.
    Simulate = 1,
    /// Energy emission and sink recording.
    Accumulate = 2,
}

/// Accumulates per-phase nanoseconds across the blocks of one shard.
///
/// Built around explicit [`PhaseTimer::begin`]/[`PhaseTimer::end`] pairs so
/// instrumented loops never fight the borrow checker, and fully inert when
/// disabled: `begin` returns `None` without reading the clock, and `end`
/// with `None` is a no-op.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimer {
    enabled: bool,
    nanos: [u64; 3],
}

impl PhaseTimer {
    /// A timer that measures only when `enabled`.
    pub fn new(enabled: bool) -> Self {
        PhaseTimer {
            enabled,
            nanos: [0; 3],
        }
    }

    /// The inert timer untraced paths pass through the engine.
    pub fn disabled() -> Self {
        PhaseTimer::new(false)
    }

    /// Whether this timer measures at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a phase measurement; `None` (no clock read) when disabled.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a measurement begun with [`PhaseTimer::begin`], attributing the
    /// elapsed time to `phase`.
    #[inline]
    pub fn end(&mut self, phase: Phase, begun: Option<Instant>) {
        if let Some(t0) = begun {
            self.nanos[phase as usize] +=
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
    }

    /// Accumulated nanoseconds of `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.record(Payload::QueueDepth {
            depth: 1,
            jobs_remaining: 1,
        });
    }

    #[test]
    fn jsonl_recorder_buffers_parseable_lines() {
        let r = JsonlRecorder::new();
        assert!(r.is_empty());
        r.record(Payload::QueueDepth {
            depth: 3,
            jobs_remaining: 2,
        });
        r.record(Payload::MergeDone {
            parts: 1,
            shards: 4,
            wall_ns: 99,
        });
        let text = r.to_jsonl();
        let events = parse_trace(&text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].payload.kind(), "queue_depth");
        assert_eq!(events[1].payload.kind(), "merge_done");
        // Monotonic stamps: the second event is not earlier than the first.
        assert!(events[1].t_ns >= events[0].t_ns);
        assert_eq!(r.len(), text.len());
    }

    /// A `Write` handle into shared bytes, so a test can keep reading what
    /// the boxed writer inside a streaming recorder has produced.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_recorder_emits_the_buffered_byte_format() {
        let payloads = [
            Payload::QueueDepth {
                depth: 3,
                jobs_remaining: 2,
            },
            Payload::MergeFold {
                part: 1,
                shards: 8,
                wall_ns: 42,
            },
            Payload::MergeDone {
                parts: 2,
                shards: 16,
                wall_ns: 99,
            },
        ];
        let out = SharedBuf::default();
        let stream = JsonlRecorder::streaming(Box::new(out.clone()));
        assert!(stream.is_empty());
        for p in &payloads {
            stream.record(p.clone());
        }
        stream.flush().expect("no deferred write error");
        let bytes = out.0.lock().unwrap().clone();
        assert_eq!(stream.len(), bytes.len());
        // The streamed bytes are exactly `Event::encode() + '\n'` per event
        // — the buffered format: re-encoding the parsed events reproduces
        // the stream byte for byte.
        let text = String::from_utf8(bytes).expect("utf-8 jsonl");
        let events = parse_trace(&text).expect("parseable stream");
        assert_eq!(events.len(), payloads.len());
        let reencoded: String = events.iter().map(|e| e.encode() + "\n").collect();
        assert_eq!(reencoded, text);
        for (event, payload) in events.iter().zip(&payloads) {
            assert_eq!(event.payload.kind(), payload.kind());
        }
        // A streaming recorder has no buffer to hand back.
        assert_eq!(stream.to_jsonl(), "");
    }

    #[test]
    fn streaming_recorder_defers_write_errors_to_flush() {
        struct FailingWriter;
        impl std::io::Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let stream = JsonlRecorder::streaming(Box::new(FailingWriter));
        stream.record(Payload::QueueDepth {
            depth: 0,
            jobs_remaining: 0,
        });
        let err = stream.flush().expect_err("first flush surfaces the error");
        assert!(err.contains("disk full"), "unexpected error: {err}");
        assert!(stream.is_empty(), "failed writes count no bytes");
    }

    #[test]
    fn recorder_is_usable_across_threads() {
        let r = Arc::new(JsonlRecorder::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    r.record(Payload::QueueDepth {
                        depth: 0,
                        jobs_remaining: 0,
                    });
                });
            }
        });
        let events = parse_trace(&r.to_jsonl()).unwrap();
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn disabled_phase_timer_never_reads_the_clock() {
        let mut t = PhaseTimer::disabled();
        assert!(t.begin().is_none());
        t.end(Phase::Rng, None);
        assert_eq!(t.nanos(Phase::Rng), 0);
    }

    #[test]
    fn enabled_phase_timer_accumulates() {
        let mut t = PhaseTimer::new(true);
        let b = t.begin();
        assert!(b.is_some());
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.end(Phase::Simulate, b);
        assert!(t.nanos(Phase::Simulate) >= 1_000_000);
        assert_eq!(t.nanos(Phase::Rng), 0);
    }

    #[test]
    fn thread_ordinals_are_distinct() {
        let here = thread_ordinal();
        let there = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, there);
        assert_eq!(here, thread_ordinal());
    }
}
