//! Hand-rolled JSON encoding and bounded parsing for trace lines.
//!
//! The trace format is deliberately flat: every event is one JSON object per
//! line whose values are numbers, strings, or booleans — never nested
//! containers. That keeps both sides trivial to hand-roll (no dependency,
//! like the `polaris-dist` wire codec) and lets the parser enforce hard
//! bounds: line length, field count, and string length are all capped, so a
//! hostile trace file cannot balloon memory or recurse.
//!
//! Floating-point values round-trip exactly: finite numbers are written with
//! Rust's shortest-representation formatting and read back with
//! `str::parse::<f64>`; the non-finite values JSON cannot express are
//! written as the strings `"inf"`, `"-inf"`, and `"nan"`.

use std::collections::BTreeMap;
use std::fmt;

/// Longest accepted trace line, in bytes.
pub const MAX_LINE_BYTES: usize = 1 << 16;

/// Most fields accepted in one trace object.
pub const MAX_FIELDS: usize = 64;

/// Longest accepted string value, in bytes (after unescaping).
pub const MAX_STRING_BYTES: usize = 4096;

/// A parse or decode failure, carrying the 1-based trace line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number within the trace file.
    pub line: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl TraceError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        TraceError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// One parsed scalar value of a trace object.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A non-negative integer literal that fits `u64`.
    Int(u64),
    /// Any other number literal (negative, fractional, exponent).
    Num(f64),
    /// A string literal (already unescaped).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Incremental writer for one flat JSON object; field order is the call
/// order. The writer never fails: all inputs are escaped or reformatted into
/// valid JSON.
pub struct JsonWriter {
    out: String,
    first: bool,
}

impl JsonWriter {
    /// Starts a new object.
    pub fn new() -> Self {
        JsonWriter {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('"');
        escape_into(&mut self.out, key);
        self.out.push_str("\":");
    }

    /// Writes an unsigned integer field.
    pub fn u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        let mut buf = [0u8; 20];
        self.out.push_str(fmt_u64(v, &mut buf));
        self
    }

    /// Writes a float field; non-finite values become the strings `"inf"`,
    /// `"-inf"`, or `"nan"` (JSON has no literals for them).
    pub fn f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key);
        if v.is_finite() {
            // Shortest round-trip representation; always contains a `.` or
            // an exponent, so it can never be confused with an Int field.
            self.out.push_str(&format!("{v:?}"));
        } else if v.is_nan() {
            self.out.push_str("\"nan\"");
        } else if v > 0.0 {
            self.out.push_str("\"inf\"");
        } else {
            self.out.push_str("\"-inf\"");
        }
        self
    }

    /// Writes a string field (escaped).
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        self.out.push('"');
        escape_into(&mut self.out, v);
        self.out.push('"');
        self
    }

    /// Writes a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        JsonWriter::new()
    }
}

/// Formats a `u64` without allocating.
fn fmt_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Parses one flat JSON object line into its fields.
///
/// # Errors
///
/// Returns a [`TraceError`] tagged with `line_no` on any syntax violation,
/// nested container, duplicate key, or exceeded bound.
pub fn parse_object(line_no: usize, line: &str) -> Result<BTreeMap<String, JsonValue>, TraceError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(TraceError::new(
            line_no,
            format!("line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    let mut p = Parser {
        line: line_no,
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            if fields.len() >= MAX_FIELDS {
                return Err(p.err(format!("more than {MAX_FIELDS} fields")));
            }
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            if fields.insert(key.clone(), value).is_some() {
                return Err(p.err(format!("duplicate key `{key}`")));
            }
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                Some(c) => return Err(p.err(format!("expected `,` or `}}`, got `{}`", c as char))),
                None => return Err(p.err("unterminated object")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after object"));
    }
    Ok(fields)
}

struct Parser<'a> {
    line: usize,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> TraceError {
        TraceError::new(self.line, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), TraceError> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(self.err(format!("expected `{}`, got `{}`", want as char, c as char))),
            None => Err(self.err(format!("expected `{}`, got end of line", want as char))),
        }
    }

    fn value(&mut self) -> Result<JsonValue, TraceError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{' | b'[') => {
                Err(self.err("nested containers are not part of the trace schema"))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}` in value", c as char))),
            None => Err(self.err("missing value")),
        }
    }

    fn literal(&mut self, lit: &'static str, v: JsonValue) -> Result<JsonValue, TraceError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("malformed literal (expected `{lit}`)")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, TraceError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !fractional && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("malformed number `{text}`")))?;
        if v.is_infinite() {
            return Err(self.err(format!("number `{text}` overflows f64")));
        }
        Ok(JsonValue::Num(v))
    }

    fn string(&mut self) -> Result<String, TraceError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            if out.len() > MAX_STRING_BYTES {
                return Err(self.err(format!("string exceeds {MAX_STRING_BYTES} bytes")));
            }
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or_else(|| self.err("truncated \\u escape"))?;
                        self.pos += 4;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| self.err("malformed \\u escape"))?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                        out.push(c);
                    }
                    Some(c) => {
                        return Err(self.err(format!("unsupported escape `\\{}`", c as char)))
                    }
                    None => return Err(self.err("unterminated escape")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control byte in string"));
                }
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 sequences: the input is a
                    // `&str`, so continuation bytes are guaranteed valid.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let len = utf8_len(c);
                        let start = self.pos - 1;
                        let end = start + len;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .and_then(|b| std::str::from_utf8(b).ok())
                            .ok_or_else(|| self.err("malformed UTF-8 in string"))?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Reads a required `u64` field.
pub(crate) fn u64_field(
    line: usize,
    fields: &BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<u64, TraceError> {
    match fields.get(key) {
        Some(JsonValue::Int(v)) => Ok(*v),
        Some(_) => Err(TraceError::new(
            line,
            format!("field `{key}` must be an unsigned integer"),
        )),
        None => Err(TraceError::new(line, format!("missing field `{key}`"))),
    }
}

/// Reads a required `f64` field, accepting the `"inf"`/`"-inf"`/`"nan"`
/// encodings of non-finite values.
pub(crate) fn f64_field(
    line: usize,
    fields: &BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<f64, TraceError> {
    match fields.get(key) {
        Some(JsonValue::Num(v)) => Ok(*v),
        Some(JsonValue::Int(v)) => Ok(*v as f64),
        Some(JsonValue::Str(s)) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            _ => Err(TraceError::new(
                line,
                format!("field `{key}` must be a number"),
            )),
        },
        Some(_) => Err(TraceError::new(
            line,
            format!("field `{key}` must be a number"),
        )),
        None => Err(TraceError::new(line, format!("missing field `{key}`"))),
    }
}

/// Reads a required string field.
pub(crate) fn str_field<'a>(
    line: usize,
    fields: &'a BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<&'a str, TraceError> {
    match fields.get(key) {
        Some(JsonValue::Str(s)) => Ok(s),
        Some(_) => Err(TraceError::new(
            line,
            format!("field `{key}` must be a string"),
        )),
        None => Err(TraceError::new(line, format!("missing field `{key}`"))),
    }
}

/// Reads a required boolean field.
pub(crate) fn bool_field(
    line: usize,
    fields: &BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<bool, TraceError> {
    match fields.get(key) {
        Some(JsonValue::Bool(v)) => Ok(*v),
        Some(_) => Err(TraceError::new(
            line,
            format!("field `{key}` must be a boolean"),
        )),
        None => Err(TraceError::new(line, format!("missing field `{key}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_flat_objects() {
        let mut w = JsonWriter::new();
        w.u64("a", 7).f64("b", 1.5).str("c", "x\"y").bool("d", true);
        assert_eq!(w.finish(), r#"{"a":7,"b":1.5,"c":"x\"y","d":true}"#);
    }

    #[test]
    fn nonfinite_floats_round_trip_as_strings() {
        let mut w = JsonWriter::new();
        w.f64("p", f64::INFINITY)
            .f64("n", f64::NEG_INFINITY)
            .f64("q", f64::NAN);
        let line = w.finish();
        let fields = parse_object(1, &line).unwrap();
        assert_eq!(f64_field(1, &fields, "p").unwrap(), f64::INFINITY);
        assert_eq!(f64_field(1, &fields, "n").unwrap(), f64::NEG_INFINITY);
        assert!(f64_field(1, &fields, "q").unwrap().is_nan());
    }

    #[test]
    fn parser_rejects_nested_containers() {
        let e = parse_object(3, r#"{"a":{"b":1}}"#).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("nested"));
        assert!(parse_object(1, r#"{"a":[1,2]}"#).is_err());
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "}",
            "{}}",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,"#,
            r#"{"a":1,"a":2}"#,
            r#"{"a":tru}"#,
            r#"{"a":-}"#,
            r#"{"a":1e999}"#,
            r#"{"a":"unterminated"#,
            r#"{"a":"bad \x escape"}"#,
            "not json at all",
        ] {
            assert!(parse_object(1, bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_enforces_field_cap() {
        let mut line = String::from("{");
        for i in 0..=MAX_FIELDS {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"k{i}\":1"));
        }
        line.push('}');
        assert!(parse_object(1, &line).is_err());
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let mut w = JsonWriter::new();
        w.str("s", "héllo → \n\t\"π\" \\ ∎");
        let line = w.finish();
        let fields = parse_object(1, &line).unwrap();
        assert_eq!(
            str_field(1, &fields, "s").unwrap(),
            "héllo → \n\t\"π\" \\ ∎"
        );
    }

    #[test]
    fn u64_boundary_values_round_trip() {
        let mut w = JsonWriter::new();
        w.u64("max", u64::MAX).u64("zero", 0);
        let fields = parse_object(1, &w.finish()).unwrap();
        assert_eq!(u64_field(1, &fields, "max").unwrap(), u64::MAX);
        assert_eq!(u64_field(1, &fields, "zero").unwrap(), 0);
    }
}
