//! The typed trace event model and its JSONL encoding.
//!
//! Every event is one flat JSON object per line with three common fields —
//! `t` (monotonic nanoseconds since the recorder's epoch), `thread` (a small
//! process-local worker ordinal), and `kind` — plus the kind's payload
//! fields. The schema is closed: decoding rejects unknown kinds, missing
//! fields, and wrong types, so a trace that parses is a trace the
//! summarizer fully understands.

use std::collections::BTreeMap;

use crate::json::{
    bool_field, f64_field, parse_object, str_field, u64_field, JsonWriter, TraceError,
};

/// Which TVLA population a shard belongs to (mirror of
/// `polaris_sim::Population` without the dependency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopulationTag {
    /// The fixed-input class `Q0`.
    Fixed,
    /// The random-input class `Q1`.
    Random,
}

impl PopulationTag {
    fn as_str(self) -> &'static str {
        match self {
            PopulationTag::Fixed => "fixed",
            PopulationTag::Random => "random",
        }
    }
}

/// Per-gate verdict of one stopping-rule look.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// |t| cleared the leak threshold plus the alpha-spending margin.
    Leaky,
    /// |t| stayed under the threshold minus the margin.
    Clean,
    /// Inside the margin band — not yet resolved at this look.
    Undecided,
}

impl Verdict {
    /// The wire spelling of the verdict.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Leaky => "leaky",
            Verdict::Clean => "clean",
            Verdict::Undecided => "undecided",
        }
    }
}

/// The typed payload of one trace event. Field names here match the JSON
/// field names one-to-one; all `*_ns` fields are nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// A round-checkpointed campaign began.
    CampaignStart {
        /// Gates in the design under assessment.
        gates: u64,
        /// Fixed-class trace budget.
        planned_fixed: u64,
        /// Random-class trace budget.
        planned_random: u64,
        /// Worker-thread budget.
        threads: u64,
        /// SIMD lane width in 64-lane words.
        lane_words: u64,
        /// Shards in the full grid.
        shards: u64,
        /// Rounds the full grid takes.
        planned_rounds: u64,
    },
    /// One shard of a campaign round finished, with its phase split.
    ShardSpan {
        /// 1-based round (0 when the executor has no round structure,
        /// e.g. a distributed part).
        round: u64,
        /// Canonical grid index of the shard.
        grid_index: u64,
        /// Population the shard's traces belong to.
        pop: PopulationTag,
        /// First trace index within the population.
        start: u64,
        /// Traces in the shard.
        count: u64,
        /// Wall time of the whole shard.
        wall_ns: u64,
        /// Time in counter-derived RNG streams (data, masks, noise).
        rng_ns: u64,
        /// Time in gate evaluation and toggle counting.
        sim_ns: u64,
        /// Time in energy emission and sink recording.
        acc_ns: u64,
    },
    /// The checkpoint fold of one round completed.
    FoldSpan {
        /// 1-based round.
        round: u64,
        /// Shards folded this round.
        shards: u64,
        /// Time spent merging sinks (summed across workers).
        wall_ns: u64,
    },
    /// A stopping rule looked at a round checkpoint.
    RoundCheckpoint {
        /// 1-based round of the look.
        round: u64,
        /// Rounds the full grid takes.
        planned_rounds: u64,
        /// Fixed-class traces consumed so far.
        fixed_traces: u64,
        /// Random-class traces consumed so far.
        random_traces: u64,
        /// Information fraction consumed, in `(0, 1]`.
        fraction: f64,
        /// Alpha-spending margin of this look.
        boundary: f64,
        /// Gates resolved leaky.
        leaky: u64,
        /// Gates resolved clean.
        clean: u64,
        /// Gates still inside the margin band.
        unresolved: u64,
        /// Whether the rule stopped the campaign at this look.
        stop: bool,
        /// Wall time the look took (leakage fold, convergence census, alpha
        /// boundary, audit-row recording) — the adaptive overhead the shard
        /// phases cannot see.
        wall_ns: u64,
    },
    /// Per-gate audit row of one stopping-rule look.
    StopAudit {
        /// 1-based round of the look.
        round: u64,
        /// Gate index within the netlist.
        gate: u64,
        /// |t| of the gate at this look.
        abs_t: f64,
        /// Alpha-spending margin of this look.
        boundary: f64,
        /// The gate's verdict at this look.
        verdict: Verdict,
    },
    /// A round-checkpointed campaign finished.
    CampaignEnd {
        /// Rounds executed.
        rounds: u64,
        /// Whether a stopping rule fired before the grid was exhausted.
        stopped_early: bool,
        /// Fixed-class traces consumed.
        fixed_traces: u64,
        /// Random-class traces consumed.
        random_traces: u64,
        /// Wall time of the whole campaign.
        wall_ns: u64,
    },
    /// Fleet queue state observed by a worker right after it took an item.
    QueueDepth {
        /// Work items left in the shared queue.
        depth: u64,
        /// Jobs not yet retired.
        jobs_remaining: u64,
    },
    /// One fleet work item (a shard of some job) finished on a worker.
    WorkItem {
        /// Fleet job index.
        job: u64,
        /// Grid index within the job's own shard grid.
        grid_index: u64,
        /// Traces in the shard.
        count: u64,
        /// Wall time of the item.
        wall_ns: u64,
        /// Phase split, as in [`Payload::ShardSpan`].
        rng_ns: u64,
        /// Time in gate evaluation and toggle counting.
        sim_ns: u64,
        /// Time in energy emission and sink recording.
        acc_ns: u64,
    },
    /// A fleet worker exited its loop.
    WorkerSummary {
        /// Work items the worker executed.
        items: u64,
        /// Time spent on items and folds.
        busy_ns: u64,
        /// Wall time of the worker's whole loop.
        wall_ns: u64,
    },
    /// A distributed worker executed its shard-plan part.
    PlanExec {
        /// 0-based part index.
        part: u64,
        /// Total parts in the plan.
        parts: u64,
        /// First grid index of the part.
        shard_lo: u64,
        /// One past the last grid index of the part.
        shard_hi: u64,
        /// Wall time of the part.
        wall_ns: u64,
    },
    /// The central merge folded one part's shard states.
    MergeFold {
        /// 0-based part index.
        part: u64,
        /// Shards folded from the part.
        shards: u64,
        /// Time spent decoding and folding the part.
        wall_ns: u64,
    },
    /// The central merge finished.
    MergeDone {
        /// Parts merged.
        parts: u64,
        /// Total shards folded.
        shards: u64,
        /// Wall time of the whole merge.
        wall_ns: u64,
    },
}

impl Payload {
    /// The event's `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::CampaignStart { .. } => "campaign_start",
            Payload::ShardSpan { .. } => "shard_span",
            Payload::FoldSpan { .. } => "fold_span",
            Payload::RoundCheckpoint { .. } => "round_checkpoint",
            Payload::StopAudit { .. } => "stop_audit",
            Payload::CampaignEnd { .. } => "campaign_end",
            Payload::QueueDepth { .. } => "queue_depth",
            Payload::WorkItem { .. } => "work_item",
            Payload::WorkerSummary { .. } => "worker_summary",
            Payload::PlanExec { .. } => "plan_exec",
            Payload::MergeFold { .. } => "merge_fold",
            Payload::MergeDone { .. } => "merge_done",
        }
    }

    /// Every kind string the schema defines, in a stable order.
    pub const KINDS: [&'static str; 12] = [
        "campaign_start",
        "shard_span",
        "fold_span",
        "round_checkpoint",
        "stop_audit",
        "campaign_end",
        "queue_depth",
        "work_item",
        "worker_summary",
        "plan_exec",
        "merge_fold",
        "merge_done",
    ];
}

/// One recorded event: common header plus typed payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Monotonic nanoseconds since the recorder's epoch.
    pub t_ns: u64,
    /// Process-local ordinal of the recording thread.
    pub thread: u64,
    /// The typed payload.
    pub payload: Payload,
}

impl Event {
    /// Encodes the event as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut w = JsonWriter::new();
        w.u64("t", self.t_ns)
            .u64("thread", self.thread)
            .str("kind", self.payload.kind());
        match &self.payload {
            Payload::CampaignStart {
                gates,
                planned_fixed,
                planned_random,
                threads,
                lane_words,
                shards,
                planned_rounds,
            } => {
                w.u64("gates", *gates)
                    .u64("planned_fixed", *planned_fixed)
                    .u64("planned_random", *planned_random)
                    .u64("threads", *threads)
                    .u64("lane_words", *lane_words)
                    .u64("shards", *shards)
                    .u64("planned_rounds", *planned_rounds);
            }
            Payload::ShardSpan {
                round,
                grid_index,
                pop,
                start,
                count,
                wall_ns,
                rng_ns,
                sim_ns,
                acc_ns,
            } => {
                w.u64("round", *round)
                    .u64("grid_index", *grid_index)
                    .str("pop", pop.as_str())
                    .u64("start", *start)
                    .u64("count", *count)
                    .u64("wall_ns", *wall_ns)
                    .u64("rng_ns", *rng_ns)
                    .u64("sim_ns", *sim_ns)
                    .u64("acc_ns", *acc_ns);
            }
            Payload::FoldSpan {
                round,
                shards,
                wall_ns,
            } => {
                w.u64("round", *round)
                    .u64("shards", *shards)
                    .u64("wall_ns", *wall_ns);
            }
            Payload::RoundCheckpoint {
                round,
                planned_rounds,
                fixed_traces,
                random_traces,
                fraction,
                boundary,
                leaky,
                clean,
                unresolved,
                stop,
                wall_ns,
            } => {
                w.u64("round", *round)
                    .u64("planned_rounds", *planned_rounds)
                    .u64("fixed_traces", *fixed_traces)
                    .u64("random_traces", *random_traces)
                    .f64("fraction", *fraction)
                    .f64("boundary", *boundary)
                    .u64("leaky", *leaky)
                    .u64("clean", *clean)
                    .u64("unresolved", *unresolved)
                    .bool("stop", *stop)
                    .u64("wall_ns", *wall_ns);
            }
            Payload::StopAudit {
                round,
                gate,
                abs_t,
                boundary,
                verdict,
            } => {
                w.u64("round", *round)
                    .u64("gate", *gate)
                    .f64("abs_t", *abs_t)
                    .f64("boundary", *boundary)
                    .str("verdict", verdict.as_str());
            }
            Payload::CampaignEnd {
                rounds,
                stopped_early,
                fixed_traces,
                random_traces,
                wall_ns,
            } => {
                w.u64("rounds", *rounds)
                    .bool("stopped_early", *stopped_early)
                    .u64("fixed_traces", *fixed_traces)
                    .u64("random_traces", *random_traces)
                    .u64("wall_ns", *wall_ns);
            }
            Payload::QueueDepth {
                depth,
                jobs_remaining,
            } => {
                w.u64("depth", *depth)
                    .u64("jobs_remaining", *jobs_remaining);
            }
            Payload::WorkItem {
                job,
                grid_index,
                count,
                wall_ns,
                rng_ns,
                sim_ns,
                acc_ns,
            } => {
                w.u64("job", *job)
                    .u64("grid_index", *grid_index)
                    .u64("count", *count)
                    .u64("wall_ns", *wall_ns)
                    .u64("rng_ns", *rng_ns)
                    .u64("sim_ns", *sim_ns)
                    .u64("acc_ns", *acc_ns);
            }
            Payload::WorkerSummary {
                items,
                busy_ns,
                wall_ns,
            } => {
                w.u64("items", *items)
                    .u64("busy_ns", *busy_ns)
                    .u64("wall_ns", *wall_ns);
            }
            Payload::PlanExec {
                part,
                parts,
                shard_lo,
                shard_hi,
                wall_ns,
            } => {
                w.u64("part", *part)
                    .u64("parts", *parts)
                    .u64("shard_lo", *shard_lo)
                    .u64("shard_hi", *shard_hi)
                    .u64("wall_ns", *wall_ns);
            }
            Payload::MergeFold {
                part,
                shards,
                wall_ns,
            } => {
                w.u64("part", *part)
                    .u64("shards", *shards)
                    .u64("wall_ns", *wall_ns);
            }
            Payload::MergeDone {
                parts,
                shards,
                wall_ns,
            } => {
                w.u64("parts", *parts)
                    .u64("shards", *shards)
                    .u64("wall_ns", *wall_ns);
            }
        }
        w.finish()
    }

    /// Decodes one trace line. `line_no` is 1-based and used in errors.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on any syntax violation, unknown kind,
    /// missing field, or wrong field type.
    pub fn decode(line_no: usize, line: &str) -> Result<Event, TraceError> {
        let fields = parse_object(line_no, line)?;
        Event::from_fields(line_no, &fields)
    }

    fn from_fields(
        n: usize,
        f: &BTreeMap<String, crate::json::JsonValue>,
    ) -> Result<Event, TraceError> {
        let t_ns = u64_field(n, f, "t")?;
        let thread = u64_field(n, f, "thread")?;
        let kind = str_field(n, f, "kind")?;
        let payload = match kind {
            "campaign_start" => Payload::CampaignStart {
                gates: u64_field(n, f, "gates")?,
                planned_fixed: u64_field(n, f, "planned_fixed")?,
                planned_random: u64_field(n, f, "planned_random")?,
                threads: u64_field(n, f, "threads")?,
                lane_words: u64_field(n, f, "lane_words")?,
                shards: u64_field(n, f, "shards")?,
                planned_rounds: u64_field(n, f, "planned_rounds")?,
            },
            "shard_span" => Payload::ShardSpan {
                round: u64_field(n, f, "round")?,
                grid_index: u64_field(n, f, "grid_index")?,
                pop: match str_field(n, f, "pop")? {
                    "fixed" => PopulationTag::Fixed,
                    "random" => PopulationTag::Random,
                    other => {
                        return Err(TraceError::new(n, format!("unknown population `{other}`")))
                    }
                },
                start: u64_field(n, f, "start")?,
                count: u64_field(n, f, "count")?,
                wall_ns: u64_field(n, f, "wall_ns")?,
                rng_ns: u64_field(n, f, "rng_ns")?,
                sim_ns: u64_field(n, f, "sim_ns")?,
                acc_ns: u64_field(n, f, "acc_ns")?,
            },
            "fold_span" => Payload::FoldSpan {
                round: u64_field(n, f, "round")?,
                shards: u64_field(n, f, "shards")?,
                wall_ns: u64_field(n, f, "wall_ns")?,
            },
            "round_checkpoint" => Payload::RoundCheckpoint {
                round: u64_field(n, f, "round")?,
                planned_rounds: u64_field(n, f, "planned_rounds")?,
                fixed_traces: u64_field(n, f, "fixed_traces")?,
                random_traces: u64_field(n, f, "random_traces")?,
                fraction: f64_field(n, f, "fraction")?,
                boundary: f64_field(n, f, "boundary")?,
                leaky: u64_field(n, f, "leaky")?,
                clean: u64_field(n, f, "clean")?,
                unresolved: u64_field(n, f, "unresolved")?,
                stop: bool_field(n, f, "stop")?,
                wall_ns: u64_field(n, f, "wall_ns")?,
            },
            "stop_audit" => Payload::StopAudit {
                round: u64_field(n, f, "round")?,
                gate: u64_field(n, f, "gate")?,
                abs_t: f64_field(n, f, "abs_t")?,
                boundary: f64_field(n, f, "boundary")?,
                verdict: match str_field(n, f, "verdict")? {
                    "leaky" => Verdict::Leaky,
                    "clean" => Verdict::Clean,
                    "undecided" => Verdict::Undecided,
                    other => return Err(TraceError::new(n, format!("unknown verdict `{other}`"))),
                },
            },
            "campaign_end" => Payload::CampaignEnd {
                rounds: u64_field(n, f, "rounds")?,
                stopped_early: bool_field(n, f, "stopped_early")?,
                fixed_traces: u64_field(n, f, "fixed_traces")?,
                random_traces: u64_field(n, f, "random_traces")?,
                wall_ns: u64_field(n, f, "wall_ns")?,
            },
            "queue_depth" => Payload::QueueDepth {
                depth: u64_field(n, f, "depth")?,
                jobs_remaining: u64_field(n, f, "jobs_remaining")?,
            },
            "work_item" => Payload::WorkItem {
                job: u64_field(n, f, "job")?,
                grid_index: u64_field(n, f, "grid_index")?,
                count: u64_field(n, f, "count")?,
                wall_ns: u64_field(n, f, "wall_ns")?,
                rng_ns: u64_field(n, f, "rng_ns")?,
                sim_ns: u64_field(n, f, "sim_ns")?,
                acc_ns: u64_field(n, f, "acc_ns")?,
            },
            "worker_summary" => Payload::WorkerSummary {
                items: u64_field(n, f, "items")?,
                busy_ns: u64_field(n, f, "busy_ns")?,
                wall_ns: u64_field(n, f, "wall_ns")?,
            },
            "plan_exec" => Payload::PlanExec {
                part: u64_field(n, f, "part")?,
                parts: u64_field(n, f, "parts")?,
                shard_lo: u64_field(n, f, "shard_lo")?,
                shard_hi: u64_field(n, f, "shard_hi")?,
                wall_ns: u64_field(n, f, "wall_ns")?,
            },
            "merge_fold" => Payload::MergeFold {
                part: u64_field(n, f, "part")?,
                shards: u64_field(n, f, "shards")?,
                wall_ns: u64_field(n, f, "wall_ns")?,
            },
            "merge_done" => Payload::MergeDone {
                parts: u64_field(n, f, "parts")?,
                shards: u64_field(n, f, "shards")?,
                wall_ns: u64_field(n, f, "wall_ns")?,
            },
            other => return Err(TraceError::new(n, format!("unknown event kind `{other}`"))),
        };
        Ok(Event {
            t_ns,
            thread,
            payload,
        })
    }
}

/// Parses a whole JSONL trace; blank lines are allowed and skipped.
///
/// # Errors
///
/// Returns the first [`TraceError`] encountered, tagged with its 1-based
/// line number.
pub fn parse_trace(input: &str) -> Result<Vec<Event>, TraceError> {
    let mut events = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(Event::decode(i + 1, line)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let mk = |payload| Event {
            t_ns: 12_345,
            thread: 3,
            payload,
        };
        vec![
            mk(Payload::CampaignStart {
                gates: 6,
                planned_fixed: 4096,
                planned_random: 4096,
                threads: 2,
                lane_words: 4,
                shards: 32,
                planned_rounds: 8,
            }),
            mk(Payload::ShardSpan {
                round: 1,
                grid_index: 0,
                pop: PopulationTag::Fixed,
                start: 0,
                count: 256,
                wall_ns: 1_000_000,
                rng_ns: 680_000,
                sim_ns: 200_000,
                acc_ns: 100_000,
            }),
            mk(Payload::FoldSpan {
                round: 1,
                shards: 4,
                wall_ns: 5_000,
            }),
            mk(Payload::RoundCheckpoint {
                round: 2,
                planned_rounds: 8,
                fixed_traces: 1024,
                random_traces: 1024,
                fraction: 0.25,
                boundary: 1.2345678901234567,
                leaky: 1,
                clean: 4,
                unresolved: 1,
                stop: false,
                wall_ns: 42_000,
            }),
            mk(Payload::StopAudit {
                round: 2,
                gate: 5,
                abs_t: 11.75,
                boundary: f64::INFINITY,
                verdict: Verdict::Leaky,
            }),
            mk(Payload::CampaignEnd {
                rounds: 3,
                stopped_early: true,
                fixed_traces: 1536,
                random_traces: 1536,
                wall_ns: 9_999_999,
            }),
            mk(Payload::QueueDepth {
                depth: 7,
                jobs_remaining: 2,
            }),
            mk(Payload::WorkItem {
                job: 1,
                grid_index: 9,
                count: 256,
                wall_ns: 800_000,
                rng_ns: 500_000,
                sim_ns: 200_000,
                acc_ns: 90_000,
            }),
            mk(Payload::WorkerSummary {
                items: 12,
                busy_ns: 10_000_000,
                wall_ns: 12_000_000,
            }),
            mk(Payload::PlanExec {
                part: 0,
                parts: 3,
                shard_lo: 0,
                shard_hi: 11,
                wall_ns: 123,
            }),
            mk(Payload::MergeFold {
                part: 2,
                shards: 10,
                wall_ns: 456,
            }),
            mk(Payload::MergeDone {
                parts: 3,
                shards: 32,
                wall_ns: 789,
            }),
        ]
    }

    #[test]
    fn every_kind_round_trips_exactly() {
        for ev in sample_events() {
            let line = ev.encode();
            let back = Event::decode(1, &line).unwrap();
            // Re-encoding compares NaN/inf fields by representation, which
            // `PartialEq` on f64 cannot.
            assert_eq!(back.encode(), line);
            if !line.contains("nan") {
                assert_eq!(back, ev, "decoded mismatch for {line}");
            }
        }
    }

    #[test]
    fn kinds_list_matches_payloads() {
        let mut seen: Vec<&str> = sample_events().iter().map(|e| e.payload.kind()).collect();
        seen.sort_unstable();
        seen.dedup();
        let mut declared = Payload::KINDS.to_vec();
        declared.sort_unstable();
        assert_eq!(seen, declared);
    }

    #[test]
    fn parse_trace_reports_the_failing_line() {
        let mut text = String::new();
        for ev in sample_events() {
            text.push_str(&ev.encode());
            text.push('\n');
        }
        text.push_str("\n{\"t\":0,\"thread\":0,\"kind\":\"no_such_kind\"}\n");
        let err = parse_trace(&text).unwrap_err();
        assert_eq!(err.line, sample_events().len() + 2);
        assert!(err.message.contains("no_such_kind"));
    }

    #[test]
    fn decode_rejects_missing_and_mistyped_fields() {
        let ok = Event {
            t_ns: 1,
            thread: 0,
            payload: Payload::QueueDepth {
                depth: 1,
                jobs_remaining: 1,
            },
        }
        .encode();
        assert!(Event::decode(1, &ok).is_ok());
        assert!(Event::decode(1, &ok.replace("\"depth\":1", "\"depth\":\"x\"")).is_err());
        assert!(Event::decode(1, &ok.replace("\"depth\":1,", "")).is_err());
        assert!(Event::decode(1, &ok.replace("\"t\":1", "\"t\":-1")).is_err());
    }
}
