//! Aggregation of a parsed trace into the figures `polaris-cli trace
//! summarize` prints: per-phase time breakdown, per-worker throughput,
//! a utilization histogram, the stopping audit table, and event-kind
//! counts.

use std::collections::BTreeMap;

use crate::event::{Event, Payload, Verdict};

/// Total nanoseconds per engine phase, summed over every shard span and
/// work item of the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Counter-derived RNG streams (data, masks, noise).
    pub rng_ns: u64,
    /// Gate evaluation and toggle counting.
    pub sim_ns: u64,
    /// Energy emission and sink recording.
    pub acc_ns: u64,
    /// Checkpoint folds.
    pub fold_ns: u64,
    /// Stopping-rule look evaluations (leakage fold, convergence, alpha
    /// boundary) at round checkpoints.
    pub checkpoint_ns: u64,
    /// Wall time of the spans the phases were measured inside.
    pub shard_wall_ns: u64,
}

impl PhaseTotals {
    /// Shard-span residual the sub-phase timers cannot see: span wall time
    /// minus rng + simulate + accumulate (timer reads, loop bookkeeping,
    /// per-shard setup).
    pub fn overhead_ns(&self) -> u64 {
        self.shard_wall_ns
            .saturating_sub(self.rng_ns + self.sim_ns + self.acc_ns)
    }

    /// Sum of the measured phases: the full shard-span wall time (the three
    /// sub-phases plus their residual overhead), folds, and checkpoint looks.
    pub fn phases_ns(&self) -> u64 {
        self.shard_wall_ns + self.fold_ns + self.checkpoint_ns
    }
}

/// Per-worker-thread aggregate over shard spans and fleet work items.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerRow {
    /// The recording thread's ordinal.
    pub thread: u64,
    /// Shards (or work items) the thread executed.
    pub shards: u64,
    /// Summed wall time of those spans.
    pub busy_ns: u64,
    /// Distinct fleet job indices the thread touched (empty outside fleets).
    pub jobs: Vec<u64>,
}

impl WorkerRow {
    /// Shards per second over the thread's busy time.
    pub fn shards_per_sec(&self) -> f64 {
        if self.busy_ns == 0 {
            0.0
        } else {
            self.shards as f64 * 1e9 / self.busy_ns as f64
        }
    }
}

/// One stopping-rule look, with its per-gate audit rows.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointRow {
    /// 1-based round of the look.
    pub round: u64,
    /// Fixed-class traces consumed at the look.
    pub fixed_traces: u64,
    /// Random-class traces consumed at the look.
    pub random_traces: u64,
    /// Information fraction consumed.
    pub fraction: f64,
    /// Alpha-spending margin of the look.
    pub boundary: f64,
    /// Gates resolved leaky / clean / unresolved.
    pub leaky: u64,
    /// Gates resolved clean.
    pub clean: u64,
    /// Gates still unresolved.
    pub unresolved: u64,
    /// Whether the rule stopped the campaign here.
    pub stop: bool,
}

/// One per-gate audit row of the final look.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditRow {
    /// Gate index within the netlist.
    pub gate: u64,
    /// |t| at the look.
    pub abs_t: f64,
    /// Alpha-spending margin at the look.
    pub boundary: f64,
    /// The gate's verdict.
    pub verdict: Verdict,
}

/// Aggregated view of one JSONL trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Events in the trace.
    pub events: usize,
    /// Count per event kind, in [`Payload::KINDS`] order, zero-count kinds
    /// omitted.
    pub kind_counts: Vec<(&'static str, usize)>,
    /// Per-phase totals.
    pub phases: PhaseTotals,
    /// Summed wall time of `campaign_end` events (None when the trace holds
    /// no finished campaign).
    pub campaign_wall_ns: Option<u64>,
    /// Per-worker aggregates, ordered by thread ordinal.
    pub workers: Vec<WorkerRow>,
    /// Worker-utilization histogram (10% buckets of busy/wall) from
    /// `worker_summary` events; None when the trace has none.
    pub utilization: Option<[u64; 10]>,
    /// Every stopping-rule look, in trace order.
    pub checkpoints: Vec<CheckpointRow>,
    /// Per-gate audit rows of the **final** look, ordered by gate.
    pub final_audit: Vec<AuditRow>,
    /// Largest queue depth a fleet worker observed.
    pub max_queue_depth: Option<u64>,
    /// Distributed parts executed (`plan_exec` events).
    pub parts_executed: usize,
}

impl TraceSummary {
    /// Builds the summary from parsed events.
    pub fn build(events: &[Event]) -> TraceSummary {
        let mut s = TraceSummary {
            events: events.len(),
            ..TraceSummary::default()
        };
        let mut kind_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut workers: BTreeMap<u64, WorkerRow> = BTreeMap::new();
        let mut histogram = [0u64; 10];
        let mut have_worker_summaries = false;
        let mut audits: BTreeMap<u64, Vec<AuditRow>> = BTreeMap::new();
        let mut campaign_wall = 0u64;
        let mut have_campaign_end = false;

        for ev in events {
            *kind_counts.entry(ev.payload.kind()).or_insert(0) += 1;
            match &ev.payload {
                Payload::ShardSpan {
                    wall_ns,
                    rng_ns,
                    sim_ns,
                    acc_ns,
                    ..
                }
                | Payload::WorkItem {
                    wall_ns,
                    rng_ns,
                    sim_ns,
                    acc_ns,
                    ..
                } => {
                    s.phases.rng_ns += rng_ns;
                    s.phases.sim_ns += sim_ns;
                    s.phases.acc_ns += acc_ns;
                    s.phases.shard_wall_ns += wall_ns;
                    let row = workers.entry(ev.thread).or_insert_with(|| WorkerRow {
                        thread: ev.thread,
                        ..WorkerRow::default()
                    });
                    row.shards += 1;
                    row.busy_ns += wall_ns;
                    if let Payload::WorkItem { job, .. } = &ev.payload {
                        if !row.jobs.contains(job) {
                            row.jobs.push(*job);
                        }
                    }
                }
                Payload::FoldSpan { wall_ns, .. } => {
                    s.phases.fold_ns += wall_ns;
                }
                Payload::RoundCheckpoint {
                    round,
                    fixed_traces,
                    random_traces,
                    fraction,
                    boundary,
                    leaky,
                    clean,
                    unresolved,
                    stop,
                    wall_ns,
                    ..
                } => {
                    s.phases.checkpoint_ns += wall_ns;
                    s.checkpoints.push(CheckpointRow {
                        round: *round,
                        fixed_traces: *fixed_traces,
                        random_traces: *random_traces,
                        fraction: *fraction,
                        boundary: *boundary,
                        leaky: *leaky,
                        clean: *clean,
                        unresolved: *unresolved,
                        stop: *stop,
                    });
                }
                Payload::StopAudit {
                    round,
                    gate,
                    abs_t,
                    boundary,
                    verdict,
                } => {
                    audits.entry(*round).or_default().push(AuditRow {
                        gate: *gate,
                        abs_t: *abs_t,
                        boundary: *boundary,
                        verdict: *verdict,
                    });
                }
                Payload::CampaignEnd { wall_ns, .. } => {
                    have_campaign_end = true;
                    campaign_wall = campaign_wall.saturating_add(*wall_ns);
                }
                Payload::QueueDepth { depth, .. } => {
                    s.max_queue_depth = Some(s.max_queue_depth.unwrap_or(0).max(*depth));
                }
                Payload::WorkerSummary {
                    busy_ns, wall_ns, ..
                } => {
                    have_worker_summaries = true;
                    let ratio = if *wall_ns == 0 {
                        0.0
                    } else {
                        (*busy_ns as f64 / *wall_ns as f64).clamp(0.0, 1.0)
                    };
                    let bucket = ((ratio * 10.0) as usize).min(9);
                    histogram[bucket] += 1;
                }
                Payload::PlanExec { .. } => s.parts_executed += 1,
                _ => {}
            }
        }

        s.kind_counts = Payload::KINDS
            .iter()
            .filter_map(|k| kind_counts.get(k).map(|&c| (*k, c)))
            .collect();
        s.campaign_wall_ns = have_campaign_end.then_some(campaign_wall);
        s.workers = workers.into_values().collect();
        s.utilization = have_worker_summaries.then_some(histogram);
        if let Some((_, rows)) = audits.into_iter().next_back() {
            let mut rows = rows;
            rows.sort_by_key(|r| r.gate);
            s.final_audit = rows;
        }
        s
    }

    /// Fraction of the summed campaign wall time covered by the measured
    /// phases (shard spans + folds + checkpoint looks). `None` without a
    /// `campaign_end` event. Meaningful for single-threaded traces, where
    /// phase time and wall time share one clock.
    pub fn phase_coverage(&self) -> Option<f64> {
        let wall = self.campaign_wall_ns?;
        if wall == 0 {
            return None;
        }
        Some(self.phases.phases_ns() as f64 / wall as f64)
    }

    /// True when the trace contains the three kinds the CI smoke gate
    /// requires of an adaptive assessment trace: shard spans, round
    /// checkpoints, and stop audits.
    pub fn has_adaptive_kinds(&self) -> bool {
        let has = |k: &str| self.kind_counts.iter().any(|&(kind, c)| kind == k && c > 0);
        has("shard_span") && has("round_checkpoint") && has("stop_audit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PopulationTag;

    fn ev(thread: u64, payload: Payload) -> Event {
        Event {
            t_ns: 0,
            thread,
            payload,
        }
    }

    #[test]
    fn aggregates_phases_workers_and_audits() {
        let events = vec![
            ev(
                0,
                Payload::ShardSpan {
                    round: 1,
                    grid_index: 0,
                    pop: PopulationTag::Fixed,
                    start: 0,
                    count: 256,
                    wall_ns: 100,
                    rng_ns: 60,
                    sim_ns: 25,
                    acc_ns: 10,
                },
            ),
            ev(
                1,
                Payload::WorkItem {
                    job: 2,
                    grid_index: 1,
                    count: 256,
                    wall_ns: 50,
                    rng_ns: 30,
                    sim_ns: 10,
                    acc_ns: 5,
                },
            ),
            ev(
                0,
                Payload::FoldSpan {
                    round: 1,
                    shards: 2,
                    wall_ns: 7,
                },
            ),
            ev(
                0,
                Payload::StopAudit {
                    round: 1,
                    gate: 1,
                    abs_t: 3.0,
                    boundary: 1.0,
                    verdict: Verdict::Leaky,
                },
            ),
            ev(
                0,
                Payload::StopAudit {
                    round: 2,
                    gate: 0,
                    abs_t: 0.5,
                    boundary: 1.0,
                    verdict: Verdict::Clean,
                },
            ),
            ev(
                0,
                Payload::CampaignEnd {
                    rounds: 2,
                    stopped_early: true,
                    fixed_traces: 512,
                    random_traces: 512,
                    wall_ns: 200,
                },
            ),
            ev(
                1,
                Payload::QueueDepth {
                    depth: 5,
                    jobs_remaining: 2,
                },
            ),
            ev(
                1,
                Payload::WorkerSummary {
                    items: 1,
                    busy_ns: 95,
                    wall_ns: 100,
                },
            ),
        ];
        let s = TraceSummary::build(&events);
        assert_eq!(s.phases.rng_ns, 90);
        assert_eq!(s.phases.sim_ns, 35);
        assert_eq!(s.phases.acc_ns, 15);
        assert_eq!(s.phases.fold_ns, 7);
        assert_eq!(s.phases.overhead_ns(), 10);
        assert_eq!(s.phases.phases_ns(), 157);
        assert_eq!(s.campaign_wall_ns, Some(200));
        assert_eq!(s.workers.len(), 2);
        assert_eq!(s.workers[1].jobs, vec![2]);
        assert_eq!(s.max_queue_depth, Some(5));
        assert_eq!(s.utilization.unwrap()[9], 1);
        // Final audit is the *last* round's rows only.
        assert_eq!(s.final_audit.len(), 1);
        assert_eq!(s.final_audit[0].gate, 0);
        assert!((s.phase_coverage().unwrap() - 0.785).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_summarizes_to_nothing() {
        let s = TraceSummary::build(&[]);
        assert_eq!(s.events, 0);
        assert!(s.kind_counts.is_empty());
        assert_eq!(s.campaign_wall_ns, None);
        assert_eq!(s.phase_coverage(), None);
        assert!(!s.has_adaptive_kinds());
    }
}
