//! Saving and loading trained POLARIS instances.
//!
//! The bundle is a single plain-text artifact containing the configuration,
//! the tree ensemble, the SHAP background rows and the mined rules — enough
//! to protect new designs without re-running cognition generation. The
//! format is line-oriented and auditable (see [`polaris_ml::persist`] for
//! the tree encoding).

use std::fmt::Write as _;

use polaris_ml::persist::{decode_ensemble, encode_ensemble, Lines, PersistError};
use polaris_ml::Dataset;
use polaris_xai::{MaskAction, Rule, RuleCondition, RuleSet};

use crate::config::PolarisConfig;
use crate::explain::Explainer;
use crate::model::PolarisModel;
use crate::pipeline::TrainedPolaris;
use crate::PolarisError;

/// Serializes a trained POLARIS instance to the bundle text format.
pub fn save_trained(trained: &TrainedPolaris) -> String {
    let mut out = String::new();
    let cfg = trained.config();
    let _ = writeln!(out, "polaris-bundle v1");
    let _ = writeln!(
        out,
        "config {} {} {} {} {} {} {} {} {} {}",
        cfg.msize,
        cfg.locality,
        cfg.iterations,
        cfg.theta_r,
        cfg.max_traces,
        cfg.cycles,
        cfg.learning_rate,
        cfg.n_estimators,
        cfg.max_depth,
        cfg.seed,
    );
    let _ = writeln!(out, "glitch {}", u8::from(cfg.glitch_model));
    let _ = writeln!(
        out,
        "adaptive {} {}",
        u8::from(cfg.adaptive),
        cfg.confidence
    );

    // Feature names (one per line; may contain spaces).
    let names = trained.dataset().feature_names();
    let _ = writeln!(out, "features {}", names.len());
    for n in names {
        let _ = writeln!(out, "{n}");
    }

    // Model.
    out.push_str(&encode_ensemble(&trained.model().to_data()));

    // Background rows with labels (the SHAP reference distribution).
    let bg = trained.explainer().background();
    let _ = writeln!(out, "background {} {}", bg.len(), names.len());
    for row in bg {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(out, "{}", cells.join(" "));
    }

    // Rules.
    let rules = trained.rules().rules();
    let _ = writeln!(out, "rules {}", rules.len());
    for r in rules {
        let action = match r.action {
            MaskAction::Mask => "mask",
            MaskAction::DontMask => "dont_mask",
        };
        let _ = writeln!(
            out,
            "rule {action} {} {} {} {}",
            r.support,
            r.confidence,
            r.strength,
            r.conditions.len()
        );
        for c in &r.conditions {
            let _ = writeln!(out, "cond {} {}", c.feature, u8::from(c.expected));
        }
    }
    let _ = writeln!(out, "end");
    out
}

fn perr(e: PersistError) -> PolarisError {
    PolarisError::Pipeline(e.to_string())
}

/// Deserializes a bundle back into a usable [`TrainedPolaris`].
///
/// The reconstructed instance carries the persisted background subset as its
/// dataset (labels are not part of the bundle and default to 0) and empty
/// cognition statistics.
///
/// # Errors
///
/// Returns [`PolarisError::Pipeline`] on any malformed section.
pub fn load_trained(text: &str) -> Result<TrainedPolaris, PolarisError> {
    let mut lines = Lines::new(text);
    let (ln, magic) = lines.next_line().map_err(perr)?;
    if magic != "polaris-bundle v1" {
        return Err(PolarisError::Pipeline(format!(
            "line {ln}: not a polaris bundle (found `{magic}`)"
        )));
    }

    // Config.
    let (ln, cfg_line) = lines.next_line().map_err(perr)?;
    let mut p = cfg_line.split_whitespace();
    if p.next() != Some("config") {
        return Err(PolarisError::Pipeline(format!(
            "line {ln}: expected `config`"
        )));
    }
    let mut field = |what: &str| -> Result<f64, PolarisError> {
        p.next()
            .ok_or_else(|| PolarisError::Pipeline(format!("line {ln}: missing {what}")))?
            .parse::<f64>()
            .map_err(|_| PolarisError::Pipeline(format!("line {ln}: malformed {what}")))
    };
    let mut config = PolarisConfig {
        msize: field("msize")? as usize,
        locality: field("locality")? as usize,
        iterations: field("iterations")? as usize,
        theta_r: field("theta_r")?,
        max_traces: field("max_traces")? as usize,
        cycles: (field("cycles")? as usize).max(1),
        learning_rate: field("learning_rate")?,
        n_estimators: field("n_estimators")? as usize,
        max_depth: field("max_depth")? as usize,
        seed: field("seed")? as u64,
        ..PolarisConfig::default()
    };
    let (_, glitch_line) = lines.next_line().map_err(perr)?;
    config.glitch_model = glitch_line == "glitch 1";

    // Adaptive-stopping knobs: an optional line (bundles written before the
    // adaptive engine lack it and keep the config defaults).
    let (mut ln, mut fline) = lines.next_line().map_err(perr)?;
    if let Some(rest) = fline.strip_prefix("adaptive ") {
        let mut p = rest.split_whitespace();
        config.adaptive = p.next() == Some("1");
        if let Some(c) = p.next().and_then(|v| v.parse::<f64>().ok()) {
            if c > 0.0 && c < 1.0 {
                config.confidence = c;
            }
        }
        (ln, fline) = lines.next_line().map_err(perr)?;
    }

    // Feature names.
    let n_features: usize = fline
        .strip_prefix("features ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PolarisError::Pipeline(format!("line {ln}: expected `features <n>`")))?;
    let mut names = Vec::with_capacity(n_features);
    for _ in 0..n_features {
        let (_, name) = lines.next_line().map_err(perr)?;
        names.push(name.to_string());
    }

    // Model.
    let model = PolarisModel::from_data(decode_ensemble(&mut lines).map_err(perr)?)?;
    config.model = model.kind();

    // Background.
    let (ln, bline) = lines.next_line().map_err(perr)?;
    let mut p = bline.split_whitespace();
    if p.next() != Some("background") {
        return Err(PolarisError::Pipeline(format!(
            "line {ln}: expected `background <rows> <cols>`"
        )));
    }
    let rows: usize = p
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PolarisError::Pipeline(format!("line {ln}: malformed row count")))?;
    let cols: usize = p
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PolarisError::Pipeline(format!("line {ln}: malformed column count")))?;
    if cols != n_features {
        return Err(PolarisError::Pipeline(format!(
            "background width {cols} does not match {n_features} features"
        )));
    }
    let mut background = Vec::with_capacity(rows);
    let mut dataset = Dataset::new(names.clone());
    for _ in 0..rows {
        let (ln, row_line) = lines.next_line().map_err(perr)?;
        let row: Result<Vec<f32>, _> = row_line
            .split_whitespace()
            .map(|v| v.parse::<f32>())
            .collect();
        let row = row.map_err(|_| PolarisError::Pipeline(format!("line {ln}: malformed row")))?;
        if row.len() != cols {
            return Err(PolarisError::Pipeline(format!(
                "line {ln}: row has {} cells, expected {cols}",
                row.len()
            )));
        }
        dataset.push(&row, 0)?;
        background.push(row);
    }

    // Rules.
    let (ln, rline) = lines.next_line().map_err(perr)?;
    let n_rules: usize = rline
        .strip_prefix("rules ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PolarisError::Pipeline(format!("line {ln}: expected `rules <n>`")))?;
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let (ln, line) = lines.next_line().map_err(perr)?;
        let mut p = line.split_whitespace();
        if p.next() != Some("rule") {
            return Err(PolarisError::Pipeline(format!(
                "line {ln}: expected `rule`"
            )));
        }
        let action = match p.next() {
            Some("mask") => MaskAction::Mask,
            Some("dont_mask") => MaskAction::DontMask,
            other => {
                return Err(PolarisError::Pipeline(format!(
                    "line {ln}: unknown action {other:?}"
                )))
            }
        };
        let support: usize = p
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PolarisError::Pipeline(format!("line {ln}: malformed support")))?;
        let confidence: f64 = p
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PolarisError::Pipeline(format!("line {ln}: malformed confidence")))?;
        let strength: f64 = p
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PolarisError::Pipeline(format!("line {ln}: malformed strength")))?;
        let n_conds: usize = p
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PolarisError::Pipeline(format!("line {ln}: malformed cond count")))?;
        let mut conditions = Vec::with_capacity(n_conds);
        for _ in 0..n_conds {
            let (ln, cline) = lines.next_line().map_err(perr)?;
            let mut p = cline.split_whitespace();
            if p.next() != Some("cond") {
                return Err(PolarisError::Pipeline(format!(
                    "line {ln}: expected `cond`"
                )));
            }
            let feature: usize = p
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| PolarisError::Pipeline(format!("line {ln}: malformed feature")))?;
            let expected = p.next() == Some("1");
            if feature >= n_features {
                return Err(PolarisError::Pipeline(format!(
                    "line {ln}: feature {feature} out of range"
                )));
            }
            conditions.push(RuleCondition {
                feature,
                name: names[feature].clone(),
                expected,
            });
        }
        rules.push(Rule {
            conditions,
            action,
            support,
            confidence,
            strength,
        });
    }

    let explainer = Explainer::from_background(background, names);
    Ok(TrainedPolaris::from_parts(
        config,
        model,
        explainer,
        RuleSet::from_rules(rules),
        dataset,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MaskBudget, PolarisPipeline};
    use polaris_ml::Classifier;
    use polaris_netlist::generators;
    use polaris_sim::PowerModel;

    fn trained() -> TrainedPolaris {
        let config = PolarisConfig {
            msize: 8,
            iterations: 3,
            max_traces: 150,
            n_estimators: 15,
            learning_rate: 0.5,
            shap_background: 12,
            ..PolarisConfig::fast_profile(3)
        };
        let training = vec![generators::iscas_like("c432", 1, 5).expect("known design")];
        PolarisPipeline::new(config)
            .train(&training, &PowerModel::default())
            .expect("training succeeds")
    }

    #[test]
    fn bundle_roundtrip_preserves_model_behaviour() {
        let original = trained();
        let text = save_trained(&original);
        let loaded = load_trained(&text).expect("bundle loads");

        // Identical predictions on the background rows.
        for row in original.explainer().background() {
            assert_eq!(
                original.model().predict_proba(row),
                loaded.model().predict_proba(row)
            );
        }
        // Config and rules round-trip.
        assert_eq!(original.config().locality, loaded.config().locality);
        assert_eq!(original.rules().len(), loaded.rules().len());
        assert_eq!(
            original.explainer().background_len(),
            loaded.explainer().background_len()
        );
    }

    #[test]
    fn loaded_bundle_can_protect_designs() {
        let original = trained();
        let text = save_trained(&original);
        let loaded = load_trained(&text).expect("bundle loads");
        let power = PowerModel::default();
        let report = loaded
            .mask_design(
                &generators::iscas_c17(),
                &power,
                MaskBudget::CellFraction(1.0),
            )
            .expect("masking succeeds");
        assert!(report.reduction_pct() > 0.0);
    }

    #[test]
    fn loaded_bundle_explains_with_same_shap() {
        let original = trained();
        let text = save_trained(&original);
        let loaded = load_trained(&text).expect("bundle loads");
        let x = original.explainer().background()[0].clone();
        let a = original.explainer().explain(original.model(), &x);
        let b = loaded.explainer().explain(loaded.model(), &x);
        assert!((a.base_value - b.base_value).abs() < 1e-9);
        for (va, vb) in a.values.iter().zip(&b.values) {
            assert!((va - vb).abs() < 1e-9);
        }
    }

    #[test]
    fn adaptive_knobs_round_trip_and_legacy_bundles_load() {
        let original = trained();
        let text = save_trained(&original);
        assert!(text.contains("\nadaptive 0 0.95\n"));
        // Adaptive knobs round-trip.
        let toggled = text.replacen("adaptive 0 0.95", "adaptive 1 0.99", 1);
        let loaded = load_trained(&toggled).expect("bundle loads");
        assert!(loaded.config().adaptive);
        assert!((loaded.config().confidence - 0.99).abs() < 1e-12);
        // A legacy bundle without the adaptive line keeps the defaults.
        let legacy: String = text
            .lines()
            .filter(|l| !l.starts_with("adaptive "))
            .map(|l| format!("{l}\n"))
            .collect();
        let loaded = load_trained(&legacy).expect("legacy bundle loads");
        assert!(!loaded.config().adaptive);
        assert!((loaded.config().confidence - 0.95).abs() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(load_trained("").is_err());
        assert!(load_trained("hello world").is_err());
        assert!(load_trained("polaris-bundle v1\nconfig 1 2").is_err());
    }

    #[test]
    fn rejects_tampered_background_width() {
        let original = trained();
        let text = save_trained(&original);
        let tampered = text.replacen("background ", "background 9999 ", 1);
        // Either the row count or a later section fails — never a panic.
        assert!(load_trained(&tampered).is_err());
    }
}
