//! Cognition generation — paper Algorithm 1.
//!
//! POLARIS builds its own training data: on each (small) training design it
//! repeatedly masks a random batch of `Msize` gates, re-measures per-gate
//! leakage with TVLA, and labels each masked gate "good" (`1`) when its
//! leakage dropped by at least `θr`, pairing the label with the gate's
//! structural features from the *original* graph. This is the unsupervised
//! synthetic-data scheme that lets POLARIS sidestep the training-data
//! scarcity of DL-LA / Netlist-Whisperer-style approaches.

use polaris_masking::apply_masking;
use polaris_netlist::{GateId, GraphView, Netlist};
use polaris_sim::{run_fleet, CampaignConfig, FleetJob, PowerModel};
use polaris_tvla::{GateLeakage, WelchAccumulator};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::config::PolarisConfig;
use crate::features::StructuralFeatureExtractor;
use crate::PolarisError;

/// Per-gate `|t|` of the original design and of a masked variant, attributed
/// to original gate ids.
fn grouped_abs_t(
    original: &Netlist,
    masked: &polaris_masking::MaskedDesign,
    leakage: &GateLeakage,
) -> Vec<f64> {
    let mut sum = vec![0.0f64; original.gate_count()];
    let mut count = vec![0usize; original.gate_count()];
    for (new_idx, origin) in masked.origin.iter().enumerate() {
        if let Some(orig) = origin {
            sum[orig.index()] += leakage.abs_t(GateId::new(new_idx));
            count[orig.index()] += 1;
        }
    }
    sum.iter()
        .zip(&count)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

/// Statistics of one cognition run, useful for ablations and logging.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CognitionStats {
    /// Masking experiments executed (TVLA campaigns beyond the baseline).
    pub iterations: usize,
    /// Labelled samples produced.
    pub samples: usize,
    /// Samples labelled "good" (1).
    pub positives: usize,
    /// Gates skipped because the unmasked design showed ~no leakage there.
    pub skipped_quiet: usize,
    /// Traces simulated across every campaign of this design (baseline +
    /// masking experiments, both classes).
    pub traces_used: usize,
    /// Traces a fully non-adaptive run would have simulated.
    pub traces_budget: usize,
    /// True when the adaptive baseline assessment stopped before its budget.
    pub baseline_stopped_early: bool,
}

/// Runs Algorithm 1 on one normalized design, appending labelled samples to
/// `dataset`.
///
/// # Errors
///
/// Propagates netlist/masking/simulation failures.
pub fn generate_for_design(
    design: &Netlist,
    config: &PolarisConfig,
    power: &PowerModel,
    extractor: &StructuralFeatureExtractor,
    dataset: &mut polaris_ml::Dataset,
    seed: u64,
) -> Result<CognitionStats, PolarisError> {
    let view = GraphView::new(design);
    let levels = design.levels()?;
    let mut campaign =
        CampaignConfig::new(config.max_traces, config.max_traces, seed).with_cycles(config.cycles);
    if config.glitch_model {
        campaign = campaign.with_glitches();
    }

    // Baseline leakage LG (Algorithm 1 line 2). Campaigns run on the
    // sharded parallel engine; the thread budget never affects the labels.
    // In adaptive mode the baseline stops once every gate's verdict has
    // converged, and the masking experiments below are pinned to the same
    // trace counts so each reduction ratio compares t-statistics at
    // matching sample sizes (|t| grows ~√n — mixing trace counts would
    // bias the labels).
    let mut stats = CognitionStats::default();
    let par = config.parallelism();
    let base_leakage = if config.adaptive {
        let a = polaris_tvla::assess_adaptive(
            design,
            power,
            &campaign,
            par,
            &config.sequential_config(),
        )?;
        campaign.n_fixed = a.stats.fixed_traces;
        campaign.n_random = a.stats.random_traces;
        stats.baseline_stopped_early = a.stats.stopped_early;
        a.leakage
    } else {
        polaris_tvla::assess_parallel(design, power, &campaign, par)?
    };
    stats.traces_used += campaign.n_fixed + campaign.n_random;
    stats.traces_budget += 2 * config.max_traces;

    // Maskable pool R (normalized designs: 1–2 input cells).
    let mut remaining: Vec<GateId> = design
        .cell_ids()
        .into_iter()
        .filter(|&id| design.gate(id).fanin().len() <= 2)
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0617);
    let mut run = 0usize;

    // Algorithm 1 line 5: while Msize ≤ |R| and run ≤ itr. The batch
    // selections are a pure function of the rng — never of a campaign's
    // results — so all of them are drawn first and the variant campaigns
    // then run as fleets on a shared worker pool (shards of different
    // variants interleave instead of each campaign serializing on its own
    // fold barrier). Per-variant outcomes are byte-identical to
    // campaign-by-campaign runs, so the labels — and the trained model —
    // are unchanged by the scheduling.
    let mut experiments: Vec<(Vec<GateId>, CampaignConfig)> = Vec::new();
    while config.msize <= remaining.len() && run < config.iterations {
        // Random selection S ⊆ R (line 6), then R ← R − S (line 8).
        remaining.shuffle(&mut rng);
        let selected: Vec<GateId> = remaining.split_off(remaining.len() - config.msize);
        // Re-seed the sampling streams but pin the fixed class vector so the
        // reduction ratio compares the same two populations.
        let mut mod_campaign = campaign.clone();
        mod_campaign.fixed_vector = Some(campaign.resolve_fixed_vector(design.data_inputs().len()));
        mod_campaign.seed = seed.wrapping_add(run as u64 + 1);
        experiments.push((selected, mod_campaign));
        run += 1;
        stats.iterations = run;
    }

    // Dmod ← modify(S, D); Lmod ← leak_estimate(Dmod) (lines 7, 9), fleeted
    // in bounded batches: only one batch's masked-design clones and compiled
    // simulation engines are alive at a time (paper-scale runs have up to
    // `itr = 100` experiments), while each batch still keeps the whole pool
    // busy. Batching is pure scheduling — per-variant results are
    // byte-identical at any batch size.
    const VARIANTS_PER_FLEET: usize = 16;
    for batch in experiments.chunks(VARIANTS_PER_FLEET) {
        let masked_batch: Vec<polaris_masking::MaskedDesign> = batch
            .iter()
            .map(|(selected, _)| apply_masking(design, selected, config.style))
            .collect::<Result<_, _>>()?;
        let jobs: Vec<FleetJob<'_, WelchAccumulator>> = masked_batch
            .iter()
            .zip(batch)
            .map(|(masked, (_, mod_campaign))| {
                FleetJob::new(&masked.netlist, power, mod_campaign.clone())
            })
            .collect();
        let outcomes = run_fleet(jobs, par)?;

        for (((selected, mod_campaign), masked), outcome) in
            batch.iter().zip(&masked_batch).zip(outcomes)
        {
            stats.traces_used += mod_campaign.n_fixed + mod_campaign.n_random;
            stats.traces_budget += 2 * config.max_traces;
            let mod_abs_t = grouped_abs_t(design, masked, &outcome.sink.leakage());

            // Label every selected gate (lines 10–18).
            for &gate in selected {
                let before = base_leakage.abs_t(gate);
                if before < 0.5 {
                    // Gate was already quiet: reduction ratio is ill-defined.
                    stats.skipped_quiet += 1;
                    continue;
                }
                let after = mod_abs_t[gate.index()];
                let r_ratio = (before - after) / before;
                let label = u8::from(r_ratio >= config.theta_r);
                let x = extractor.extract(design, &view, &levels, gate);
                dataset.push(&x, label)?;
                stats.samples += 1;
                stats.positives += usize::from(label == 1);
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolarisConfig;
    use polaris_ml::Dataset;
    use polaris_netlist::generators;
    use polaris_netlist::transform::decompose;

    fn run(config: &PolarisConfig) -> (Dataset, CognitionStats) {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let fx = StructuralFeatureExtractor::new(config.locality);
        let mut data = Dataset::new(fx.feature_names());
        let stats =
            generate_for_design(&d, config, &PowerModel::default(), &fx, &mut data, 11).unwrap();
        (data, stats)
    }

    fn small_cfg() -> PolarisConfig {
        PolarisConfig {
            msize: 2,
            iterations: 3,
            max_traces: 250,
            ..PolarisConfig::fast_profile(1)
        }
    }

    #[test]
    fn produces_labelled_samples() {
        let (data, stats) = run(&small_cfg());
        assert!(stats.samples > 0);
        assert_eq!(data.len(), stats.samples);
        assert_eq!(stats.iterations, 3);
        assert_eq!(
            data.n_features(),
            StructuralFeatureExtractor::new(7).n_features()
        );
    }

    #[test]
    fn labels_respond_to_theta_r() {
        // θr = 0 labels every leakage-reducing mask "good"; θr close to 1
        // almost none. Positives must not increase with θr.
        let lenient = PolarisConfig {
            theta_r: 0.0,
            ..small_cfg()
        };
        let strict = PolarisConfig {
            theta_r: 0.999,
            ..small_cfg()
        };
        let (_, stats_lenient) = run(&lenient);
        let (_, stats_strict) = run(&strict);
        assert!(stats_lenient.positives >= stats_strict.positives);
        assert!(
            stats_lenient.positives > 0,
            "masking c17 gates reduces their leakage"
        );
    }

    #[test]
    fn respects_iteration_budget_and_pool() {
        // msize 4 on 6 maskable gates: only one batch fits; the pool rule
        // (Msize ≤ |R|) stops after it.
        let cfg = PolarisConfig {
            msize: 4,
            iterations: 10,
            ..small_cfg()
        };
        let (_, stats) = run(&cfg);
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn deterministic() {
        let cfg = small_cfg();
        let (d1, s1) = run(&cfg);
        let (d2, s2) = run(&cfg);
        assert_eq!(s1, s2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn tracks_trace_consumption() {
        let (_, stats) = run(&small_cfg());
        // Non-adaptive: every campaign consumes its full budget.
        assert_eq!(stats.traces_budget, 2 * 250 * (1 + stats.iterations));
        assert_eq!(stats.traces_used, stats.traces_budget);
        assert!(!stats.baseline_stopped_early);
    }

    #[test]
    fn adaptive_cognition_spends_at_most_the_budget_and_stays_deterministic() {
        let cfg = PolarisConfig {
            adaptive: true,
            max_traces: 2048,
            ..small_cfg()
        };
        let (d1, s1) = run(&cfg);
        let (d2, s2) = run(&cfg);
        assert_eq!(s1, s2, "adaptive cognition must be deterministic");
        assert_eq!(d1, d2);
        assert!(s1.samples > 0);
        assert!(s1.traces_used <= s1.traces_budget);
        // c17's baseline verdict converges well inside a 2048-trace budget.
        assert!(s1.baseline_stopped_early, "stats: {s1:?}");
        assert!(s1.traces_used < s1.traces_budget);
    }
}
