//! Structural feature extraction (paper §IV-A, Fig. 2).
//!
//! For a gate `G0`, BFS over the undirected gate graph yields the locality
//! slots `G1..GL`. The feature vector is:
//!
//! * one-hot gate kind per slot — names like `"G4 = NAND"` (these are the
//!   literals the Table-V rules read off);
//! * upper-triangle slot-connectivity bits — names like
//!   `"G4 (NAND) and G5 (AND) connected"` rendered as `conn(G4,G5)`;
//! * scalar context: fanin / fanout / degree of `G0` and its combinational
//!   level, each lightly normalized.

use polaris_netlist::{GateId, GateKind, GraphView, Netlist};

/// Extractor for fixed-width structural feature vectors.
///
/// ```
/// use polaris::StructuralFeatureExtractor;
/// use polaris_netlist::{generators, GraphView};
///
/// let design = generators::iscas_c17();
/// let view = GraphView::new(&design);
/// let levels = design.levels().expect("acyclic");
/// let fx = StructuralFeatureExtractor::new(7);
/// let x = fx.extract(&design, &view, &levels, design.cell_ids()[0]);
/// assert_eq!(x.len(), fx.n_features());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructuralFeatureExtractor {
    locality: usize,
}

impl StructuralFeatureExtractor {
    /// Creates an extractor with BFS locality `l` (the paper uses `L = 7`).
    pub fn new(locality: usize) -> Self {
        StructuralFeatureExtractor { locality }
    }

    /// The locality `L`.
    pub fn locality(&self) -> usize {
        self.locality
    }

    /// Number of slots (`L + 1`, slot 0 = the gate itself).
    pub fn n_slots(&self) -> usize {
        self.locality + 1
    }

    /// Total feature-vector width.
    pub fn n_features(&self) -> usize {
        let slots = self.n_slots();
        slots * GateKind::ALL.len() + slots * (slots - 1) / 2 + 4
    }

    /// Human-readable feature names, aligned with [`Self::extract`] output.
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.n_features());
        for slot in 0..self.n_slots() {
            for kind in GateKind::ALL {
                names.push(format!("G{slot} = {}", kind.mnemonic()));
            }
        }
        for i in 0..self.n_slots() {
            for j in i + 1..self.n_slots() {
                names.push(format!("conn(G{i},G{j})"));
            }
        }
        names.push("fanin(G0)".to_string());
        names.push("fanout(G0)".to_string());
        names.push("degree(G0)".to_string());
        names.push("level(G0)".to_string());
        names
    }

    /// Extracts the feature vector of one gate.
    ///
    /// `view` and `levels` must come from the same `netlist`
    /// ([`GraphView::new`] / [`Netlist::levels`]); they are passed in so
    /// callers amortize their construction over all gates.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range for the netlist.
    pub fn extract(
        &self,
        netlist: &Netlist,
        view: &GraphView,
        levels: &[usize],
        gate: GateId,
    ) -> Vec<f32> {
        let mut x = Vec::with_capacity(self.n_features());
        let loc = view.locality(gate, self.locality);

        // One-hot kind per slot (empty slot → all zeros).
        for slot in 0..self.n_slots() {
            let kind = loc.slot(slot).map(|id| netlist.gate(id).kind());
            for k in GateKind::ALL {
                x.push(f32::from(u8::from(kind == Some(k))));
            }
        }
        // Pairwise slot connectivity.
        for i in 0..self.n_slots() {
            for j in i + 1..self.n_slots() {
                let connected = match (loc.slot(i), loc.slot(j)) {
                    (Some(a), Some(b)) => view.connected(a, b),
                    _ => false,
                };
                x.push(f32::from(u8::from(connected)));
            }
        }
        // Scalar context, squashed to keep ranges comparable with the bits.
        let squash = |v: usize| (v as f32 / 8.0).min(1.0);
        x.push(squash(netlist.gate(gate).fanin().len()));
        x.push(squash(view.fanout(gate).len()));
        x.push(squash(view.degree(gate)));
        x.push(squash(levels[gate.index()]));
        debug_assert_eq!(x.len(), self.n_features());
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    fn setup() -> (Netlist, GraphView, Vec<usize>) {
        let n = generators::iscas_c17();
        let view = GraphView::new(&n);
        let levels = n.levels().unwrap();
        (n, view, levels)
    }

    #[test]
    fn width_matches_names() {
        for l in [0, 1, 3, 7] {
            let fx = StructuralFeatureExtractor::new(l);
            assert_eq!(fx.feature_names().len(), fx.n_features());
        }
    }

    #[test]
    fn paper_l7_width() {
        // 8 slots × 13 kinds + C(8,2) connectivity + 4 scalars = 136.
        let fx = StructuralFeatureExtractor::new(7);
        assert_eq!(fx.n_features(), 8 * 13 + 28 + 4);
    }

    #[test]
    fn one_hot_is_exclusive_per_slot() {
        let (n, view, levels) = setup();
        let fx = StructuralFeatureExtractor::new(7);
        for id in n.cell_ids() {
            let x = fx.extract(&n, &view, &levels, id);
            for slot in 0..fx.n_slots() {
                let ones: f32 = x[slot * GateKind::ALL.len()..(slot + 1) * GateKind::ALL.len()]
                    .iter()
                    .sum();
                assert!(ones <= 1.0, "slot {slot} has {ones} kinds set");
            }
        }
    }

    #[test]
    fn slot_zero_encodes_own_kind() {
        let (n, view, levels) = setup();
        let fx = StructuralFeatureExtractor::new(3);
        let names = fx.feature_names();
        for id in n.cell_ids() {
            let x = fx.extract(&n, &view, &levels, id);
            let kind = n.gate(id).kind();
            let idx = names
                .iter()
                .position(|nm| nm == &format!("G0 = {}", kind.mnemonic()))
                .unwrap();
            assert_eq!(x[idx], 1.0);
        }
    }

    #[test]
    fn empty_slots_are_zero() {
        // A 2-gate design with locality 7: most slots empty.
        let src = "
module t (a, y);
  input a;
  output y;
  not g (y, a);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let view = GraphView::new(&n);
        let levels = n.levels().unwrap();
        let fx = StructuralFeatureExtractor::new(7);
        let gate = n.cell_ids()[0];
        let x = fx.extract(&n, &view, &levels, gate);
        // Slots 2.. are empty: their kind blocks must be all zero.
        for slot in 2..fx.n_slots() {
            let block = &x[slot * GateKind::ALL.len()..(slot + 1) * GateKind::ALL.len()];
            assert!(block.iter().all(|&v| v == 0.0), "slot {slot} not empty");
        }
    }

    #[test]
    fn deterministic() {
        let (n, view, levels) = setup();
        let fx = StructuralFeatureExtractor::new(7);
        for id in n.cell_ids() {
            assert_eq!(
                fx.extract(&n, &view, &levels, id),
                fx.extract(&n, &view, &levels, id)
            );
        }
    }

    #[test]
    fn distinguishes_structurally_different_gates() {
        let (n, view, levels) = setup();
        let fx = StructuralFeatureExtractor::new(7);
        let cells = n.cell_ids();
        // c17's six nands are not all structurally identical.
        let vecs: Vec<Vec<f32>> = cells
            .iter()
            .map(|&id| fx.extract(&n, &view, &levels, id))
            .collect();
        let distinct: std::collections::HashSet<String> =
            vecs.iter().map(|v| format!("{v:?}")).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn scalars_are_bounded() {
        let (n, view, levels) = setup();
        let fx = StructuralFeatureExtractor::new(5);
        for id in n.ids() {
            let x = fx.extract(&n, &view, &levels, id);
            for &v in &x[x.len() - 4..] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
