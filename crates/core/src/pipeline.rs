//! The end-to-end POLARIS workflow: train once on small designs, protect
//! arbitrary unseen designs (the paper's transfer-learning setup, §V-A).

use polaris_ml::metrics::{roc_auc, Confusion};
use polaris_ml::{Classifier, Dataset};
use polaris_netlist::transform::decompose;
use polaris_netlist::Netlist;
use polaris_sim::{run_fleet, CampaignOutcome, FleetJob, PowerModel};
use polaris_tvla::WelchAccumulator;
use polaris_xai::{RuleMiner, RuleSet};

use crate::cognition::{generate_for_design, CognitionStats};
use crate::config::PolarisConfig;
use crate::explain::Explainer;
use crate::features::StructuralFeatureExtractor;
use crate::masking_flow::{
    baseline_outcome_traced, baseline_outcomes_fleet, finish_mitigation,
    polaris_mask_with_baseline, polaris_mask_with_baseline_traced, prepare_mitigation,
    MitigationReport,
};
use crate::model::PolarisModel;
use crate::PolarisError;

/// Held-out validation quality of the cognition model (20 % stratified
/// split, measured before the final full-data fit).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ValidationMetrics {
    /// Fraction of correct hard predictions.
    pub accuracy: f64,
    /// Positive-class precision.
    pub precision: f64,
    /// Positive-class recall.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Area under the ROC curve of the probability scores.
    pub auc: f64,
    /// Held-out samples evaluated.
    pub samples: usize,
}

/// How many gates Algorithm 2 masks on a target design.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MaskBudget {
    /// Fraction of the design's *leaky* gates (Table II's "X% Mask"); the
    /// leaky count comes from the report's baseline assessment.
    LeakyFraction(f64),
    /// Absolute number of gates.
    Count(usize),
    /// Fraction of all maskable cells.
    CellFraction(f64),
}

/// The POLARIS tool, configured but not yet trained.
#[derive(Clone, Debug)]
pub struct PolarisPipeline {
    config: PolarisConfig,
}

impl PolarisPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PolarisConfig) -> Self {
        PolarisPipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PolarisConfig {
        &self.config
    }

    /// Stage 1 + 2 + XAI: generate cognition data on the training designs,
    /// train the configured model, and mine the SHAP rule set.
    ///
    /// # Errors
    ///
    /// Returns [`PolarisError::Pipeline`] for an empty training set and
    /// propagates cognition/training failures.
    pub fn train(
        &self,
        training_designs: &[Netlist],
        power: &PowerModel,
    ) -> Result<TrainedPolaris, PolarisError> {
        if training_designs.is_empty() {
            return Err(PolarisError::Pipeline("no training designs given".into()));
        }
        let extractor = StructuralFeatureExtractor::new(self.config.locality);
        let mut dataset = Dataset::new(extractor.feature_names());
        let mut stats = Vec::with_capacity(training_designs.len());
        for (i, design) in training_designs.iter().enumerate() {
            let (normalized, _) = decompose(design)?;
            let s = generate_for_design(
                &normalized,
                &self.config,
                power,
                &extractor,
                &mut dataset,
                self.config.seed.wrapping_add(i as u64 * 0x9E37),
            )?;
            stats.push((design.name().to_string(), s));
        }
        // Held-out validation: fit on 80 %, score on 20 %, then the final
        // model below is fit on everything.
        let validation = match dataset.stratified_split(0.2, self.config.seed ^ 0x5A11D) {
            Ok((train_part, test_part)) if !test_part.is_empty() => {
                match PolarisModel::train(&train_part, &self.config) {
                    Ok(holdout_model) => {
                        let y_true: Vec<u8> =
                            (0..test_part.len()).map(|i| test_part.label(i)).collect();
                        let scores: Vec<f64> = (0..test_part.len())
                            .map(|i| holdout_model.predict_proba(test_part.row(i)))
                            .collect();
                        let y_pred: Vec<u8> = scores.iter().map(|&p| u8::from(p >= 0.5)).collect();
                        let c = Confusion::from_predictions(&y_true, &y_pred);
                        ValidationMetrics {
                            accuracy: c.accuracy(),
                            precision: c.precision(),
                            recall: c.recall(),
                            f1: c.f1(),
                            auc: roc_auc(&y_true, &scores),
                            samples: test_part.len(),
                        }
                    }
                    Err(_) => ValidationMetrics::default(),
                }
            }
            _ => ValidationMetrics::default(),
        };

        let model = PolarisModel::train(&dataset, &self.config)?;
        let explainer = Explainer::new(&dataset, self.config.shap_background);
        // Adaptive rule miner: with small learning rates the model's
        // probabilities cluster near 0.5, so anchor the "confident" cutoff
        // at the observed 75th percentile rather than an absolute value.
        let mut probs: Vec<f64> = (0..dataset.len())
            .map(|i| polaris_ml::Classifier::predict_proba(&model, dataset.row(i)))
            .collect();
        probs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let p75 = probs[(probs.len() * 3) / 4].max(0.5 + 1e-6);
        let miner = RuleMiner {
            min_probability: p75.min(0.7),
            conditions_per_rule: 3,
            min_support: 3,
            max_rules: 5,
        };
        let mut rules = explainer.mine_rules(&model, &dataset, &miner);
        if rules.is_empty() {
            // Fall back to 2-condition rules before giving up.
            rules = explainer.mine_rules(
                &model,
                &dataset,
                &RuleMiner {
                    conditions_per_rule: 2,
                    min_probability: p75.min(0.7),
                    min_support: 2,
                    max_rules: 5,
                },
            );
        }
        Ok(TrainedPolaris {
            config: self.config.clone(),
            extractor,
            model,
            explainer,
            rules,
            dataset,
            cognition_stats: stats,
            validation,
        })
    }
}

/// A trained POLARIS instance, ready to protect designs.
#[derive(Clone, Debug)]
pub struct TrainedPolaris {
    config: PolarisConfig,
    extractor: StructuralFeatureExtractor,
    model: PolarisModel,
    explainer: Explainer,
    rules: RuleSet,
    dataset: Dataset,
    cognition_stats: Vec<(String, CognitionStats)>,
    validation: ValidationMetrics,
}

impl TrainedPolaris {
    /// Reassembles a trained instance from persisted parts (see
    /// [`crate::persist`]). `dataset` is typically the persisted background
    /// subset rather than the full cognition corpus.
    pub fn from_parts(
        config: PolarisConfig,
        model: PolarisModel,
        explainer: Explainer,
        rules: RuleSet,
        dataset: Dataset,
    ) -> Self {
        let extractor = StructuralFeatureExtractor::new(config.locality);
        TrainedPolaris {
            config,
            extractor,
            model,
            explainer,
            rules,
            dataset,
            cognition_stats: Vec::new(),
            validation: ValidationMetrics::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PolarisConfig {
        &self.config
    }

    /// Overrides the campaign worker budget (e.g. from a CLI `--threads`
    /// flag). Purely a throughput knob: the sharded campaign engine is
    /// bit-identical at any thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// Overrides the adaptive-stopping knobs (e.g. from CLI `--adaptive` /
    /// `--confidence` flags): assessment campaigns may then stop before the
    /// `max_traces` budget once every gate's verdict has converged.
    pub fn set_adaptive(&mut self, adaptive: bool, confidence: f64) {
        self.config.adaptive = adaptive;
        self.config.confidence = confidence;
    }

    /// Overrides the per-class trace budget of the reporting campaigns
    /// (e.g. from a CLI `--traces` flag).
    pub fn set_max_traces(&mut self, max_traces: usize) {
        self.config.max_traces = max_traces;
    }

    /// The trained classifier.
    pub fn model(&self) -> &PolarisModel {
        &self.model
    }

    /// The SHAP-mined masking rules (Table V).
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The cognition dataset the model was trained on.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The structural feature extractor (shared between train and infer).
    pub fn extractor(&self) -> &StructuralFeatureExtractor {
        &self.extractor
    }

    /// SHAP explainer bound to the cognition background.
    pub fn explainer(&self) -> &Explainer {
        &self.explainer
    }

    /// Per-training-design cognition statistics.
    pub fn cognition_stats(&self) -> &[(String, CognitionStats)] {
        &self.cognition_stats
    }

    /// Held-out validation quality of the cognition model (all-zero when
    /// reconstructed from a persisted bundle).
    pub fn validation(&self) -> ValidationMetrics {
        self.validation
    }

    /// Protects one (possibly un-normalized) design: normalizes it, resolves
    /// the mask budget, and runs Algorithm 2 with model+rules scoring.
    ///
    /// # Errors
    ///
    /// Propagates netlist/masking/simulation failures.
    pub fn mask_design(
        &self,
        design: &Netlist,
        power: &PowerModel,
        budget: MaskBudget,
    ) -> Result<MitigationReport, PolarisError> {
        self.mask_design_traced(design, power, budget, polaris_obs::shared_null())
    }

    /// [`TrainedPolaris::mask_design`] reporting structured trace events to
    /// `recorder`: both reporting campaigns (baseline and after-masking)
    /// emit shard/fold spans, and in adaptive mode the baseline adds the
    /// checkpoint census and per-gate stopping audit trail. The report is
    /// byte-identical to the untraced run in every statistical field.
    ///
    /// # Errors
    ///
    /// Propagates netlist/masking/simulation failures.
    pub fn mask_design_traced(
        &self,
        design: &Netlist,
        power: &PowerModel,
        budget: MaskBudget,
        recorder: polaris_obs::SharedRecorder,
    ) -> Result<MitigationReport, PolarisError> {
        // One reporting baseline serves both the leaky-count budget
        // resolution and the mitigation report (a leaky *count* is a
        // verdict, not a magnitude — exactly what adaptive stopping
        // preserves). Running it here and handing it down keeps this path
        // bit-identical to mask_design_with_baseline for every budget kind
        // and spares LeakyFraction its former extra campaign.
        let (normalized, _) = decompose(design)?;
        let assess_start = std::time::Instant::now();
        let baseline = baseline_outcome_traced(&normalized, &self.config, power, recorder.clone())?;
        let baseline_time_s = assess_start.elapsed().as_secs_f64();
        let msize = self.resolve_msize(&normalized, budget, || {
            Ok(baseline.sink.leakage().summarize(&normalized).leaky_cells)
        })?;
        let mut report = polaris_mask_with_baseline_traced(
            &normalized,
            &self.model,
            Some(&self.rules),
            &self.extractor,
            &self.config,
            power,
            msize,
            baseline,
            recorder,
        )?;
        report.assessment_time_s += baseline_time_s;
        Ok(report)
    }

    /// [`TrainedPolaris::mask_design`] for a whole suite on one shared
    /// worker pool: every design's reporting baseline runs as a job of one
    /// fleet (adaptive stopping rules firing per job mid-fleet), the
    /// TVLA-free mitigation paths run back to back, and every masked
    /// design's after-campaign runs as a job of a second fleet. Small
    /// designs therefore stop serializing on their own per-campaign fold
    /// barriers — suite throughput scales with cores, not with the widest
    /// single design.
    ///
    /// Report `i` is byte-identical to `mask_design(&designs[i], …)` in
    /// every statistical field (leakage maps, summaries, scores, selected
    /// gates, trace counts). Only the wall-clock fields differ in meaning:
    /// the shared pool's time cannot be attributed per design, so each
    /// report's `assessment_time_s` carries an even share of the suite's
    /// two fleet phases.
    ///
    /// # Errors
    ///
    /// Propagates netlist/masking/simulation failures.
    pub fn mask_designs(
        &self,
        designs: &[Netlist],
        power: &PowerModel,
        budget: MaskBudget,
    ) -> Result<Vec<MitigationReport>, PolarisError> {
        let mut normalized = Vec::with_capacity(designs.len());
        for design in designs {
            normalized.push(decompose(design)?.0);
        }
        let fleet_start = std::time::Instant::now();
        let baselines = baseline_outcomes_fleet(&normalized, &self.config, power)?;
        let baseline_seconds = fleet_start.elapsed().as_secs_f64();

        let mut pendings = Vec::with_capacity(designs.len());
        for (norm, baseline) in normalized.iter().zip(baselines) {
            let msize = self.resolve_msize(norm, budget, || {
                Ok(baseline.sink.leakage().summarize(norm).leaky_cells)
            })?;
            pendings.push(prepare_mitigation(
                norm,
                &self.model,
                Some(&self.rules),
                &self.extractor,
                &self.config,
                msize,
                baseline,
            )?);
        }

        let fleet_start = std::time::Instant::now();
        let jobs: Vec<FleetJob<'_, WelchAccumulator>> = pendings
            .iter()
            .map(|p| FleetJob::new(p.masked_netlist(), power, p.after_campaign.clone()))
            .collect();
        let outcomes = run_fleet(jobs, self.config.parallelism())?;
        let after_seconds = fleet_start.elapsed().as_secs_f64();

        let share = (baseline_seconds + after_seconds) / designs.len().max(1) as f64;
        Ok(normalized
            .iter()
            .zip(pendings.into_iter().zip(outcomes))
            .map(|(norm, (pending, outcome))| finish_mitigation(norm, pending, outcome.sink, share))
            .collect())
    }

    /// Resolves a [`MaskBudget`] into a gate count over the normalized
    /// design; `leaky_cells` supplies the leaky-count baseline only when a
    /// [`MaskBudget::LeakyFraction`] budget actually needs one. Shared by
    /// [`TrainedPolaris::mask_design`] (which runs a campaign for it) and
    /// [`TrainedPolaris::mask_design_with_baseline`] (which reads the
    /// supplied fold), so budget semantics cannot drift between the paths.
    fn resolve_msize<F>(
        &self,
        normalized: &Netlist,
        budget: MaskBudget,
        leaky_cells: F,
    ) -> Result<usize, PolarisError>
    where
        F: FnOnce() -> Result<usize, PolarisError>,
    {
        let maskable = normalized
            .cell_ids()
            .into_iter()
            .filter(|&id| normalized.gate(id).fanin().len() <= 2)
            .count();
        Ok(match budget {
            MaskBudget::Count(n) => n.min(maskable),
            MaskBudget::CellFraction(f) => ((maskable as f64) * f.clamp(0.0, 1.0)).round() as usize,
            MaskBudget::LeakyFraction(f) => {
                let leaky = leaky_cells()?;
                (((leaky as f64) * f.clamp(0.0, 1.0)).round() as usize).min(maskable)
            }
        })
    }

    /// [`TrainedPolaris::mask_design`] with the baseline assessment already
    /// done — consumes a pre-folded [`CampaignOutcome`] over
    /// [`crate::masking_flow::reporting_campaign`] of the *normalized*
    /// design (distributed coordinators fold it from worker shard states
    /// via `polaris_dist::merged_outcome`). The leaky-fraction budget is
    /// resolved against the supplied baseline, so no extra campaign runs
    /// before the mitigation path.
    ///
    /// # Errors
    ///
    /// Propagates netlist/masking/simulation failures.
    pub fn mask_design_with_baseline(
        &self,
        design: &Netlist,
        power: &PowerModel,
        budget: MaskBudget,
        baseline: CampaignOutcome<WelchAccumulator>,
    ) -> Result<MitigationReport, PolarisError> {
        let (normalized, _) = decompose(design)?;
        let msize = self.resolve_msize(&normalized, budget, || {
            Ok(baseline.sink.leakage().summarize(&normalized).leaky_cells)
        })?;
        polaris_mask_with_baseline(
            &normalized,
            &self.model,
            Some(&self.rules),
            &self.extractor,
            &self.config,
            power,
            msize,
            baseline,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    fn tiny_pipeline() -> (TrainedPolaris, PowerModel) {
        let config = PolarisConfig {
            msize: 8,
            iterations: 4,
            max_traces: 200,
            n_estimators: 20,
            learning_rate: 0.5,
            // Seed pinned so the tiny cognition run yields a holdout with
            // both classes and AUC > 0.5; the suite is deterministic for a
            // fixed seed.
            ..PolarisConfig::fast_profile(5)
        };
        let power = PowerModel::default();
        // Two small training designs keep the test quick.
        let training = vec![
            generators::iscas_like("c432", 1, 5).unwrap(),
            generators::iscas_like("c499", 1, 6).unwrap(),
        ];
        let trained = PolarisPipeline::new(config)
            .train(&training, &power)
            .unwrap();
        (trained, power)
    }

    #[test]
    fn trains_and_produces_cognition_data() {
        let (trained, _) = tiny_pipeline();
        assert!(
            trained.dataset().len() > 20,
            "got {}",
            trained.dataset().len()
        );
        let (neg, pos) = trained.dataset().class_counts();
        assert!(neg > 0 && pos > 0, "classes: {neg}/{pos}");
        assert_eq!(trained.cognition_stats().len(), 2);
    }

    #[test]
    fn masks_unseen_design_and_reduces_leakage() {
        let (trained, power) = tiny_pipeline();
        let target = generators::iscas_c17();
        let report = trained
            .mask_design(&target, &power, MaskBudget::CellFraction(1.0))
            .unwrap();
        assert!(
            report.reduction_pct() > 20.0,
            "full masking should cut leakage substantially: {:.1}%",
            report.reduction_pct()
        );
        assert!(report.mitigation_time_s >= 0.0);
    }

    #[test]
    fn budget_variants_resolve_sanely() {
        let (trained, power) = tiny_pipeline();
        let target = generators::iscas_c17();
        let by_count = trained
            .mask_design(&target, &power, MaskBudget::Count(3))
            .unwrap();
        assert_eq!(by_count.masked_gates.len(), 3);

        let by_fraction = trained
            .mask_design(&target, &power, MaskBudget::CellFraction(0.5))
            .unwrap();
        assert_eq!(by_fraction.masked_gates.len(), 3); // 6 cells × 0.5

        let by_leaky = trained
            .mask_design(&target, &power, MaskBudget::LeakyFraction(0.5))
            .unwrap();
        assert!(by_leaky.masked_gates.len() <= 6);
    }

    #[test]
    fn larger_budget_reduces_more() {
        let (trained, power) = tiny_pipeline();
        let target = generators::des3(1, 42);
        let small = trained
            .mask_design(&target, &power, MaskBudget::CellFraction(0.1))
            .unwrap();
        let large = trained
            .mask_design(&target, &power, MaskBudget::CellFraction(0.9))
            .unwrap();
        assert!(
            large.reduction_pct() > small.reduction_pct(),
            "90% mask ({:.1}%) should beat 10% mask ({:.1}%)",
            large.reduction_pct(),
            small.reduction_pct()
        );
    }

    #[test]
    fn mask_designs_fleet_matches_solo_reports() {
        // The suite path schedules every campaign on one shared pool; every
        // statistical field of each report must still equal the solo
        // mask_design run (only wall-clock attribution may differ).
        let (trained, power) = tiny_pipeline();
        let targets = vec![generators::iscas_c17(), generators::des3(1, 42)];
        let budget = MaskBudget::LeakyFraction(0.5);
        let fleet = trained.mask_designs(&targets, &power, budget).unwrap();
        assert_eq!(fleet.len(), targets.len());
        for (target, report) in targets.iter().zip(&fleet) {
            let solo = trained.mask_design(target, &power, budget).unwrap();
            assert_eq!(report.masked_gates, solo.masked_gates);
            assert_eq!(report.scores, solo.scores);
            assert_eq!(report.before, solo.before);
            assert_eq!(report.after, solo.after);
            assert_eq!(report.after_grouped_abs_t, solo.after_grouped_abs_t);
            assert_eq!(report.campaign_fixed_traces, solo.campaign_fixed_traces);
            assert_eq!(report.campaign_random_traces, solo.campaign_random_traces);
            assert_eq!(report.stopped_early, solo.stopped_early);
            assert_eq!(report.before_map.abs_t_all(), solo.before_map.abs_t_all());
        }
    }

    #[test]
    fn validation_metrics_are_populated_and_sane() {
        let (trained, _) = tiny_pipeline();
        let v = trained.validation();
        assert!(v.samples > 0, "holdout split must be evaluated");
        assert!((0.0..=1.0).contains(&v.accuracy));
        assert!((0.0..=1.0).contains(&v.auc));
        assert!(
            v.auc > 0.5,
            "structural features should beat random ranking: AUC = {:.3}",
            v.auc
        );
    }

    #[test]
    fn empty_training_set_rejected() {
        let p = PolarisPipeline::new(PolarisConfig::fast_profile(1));
        assert!(matches!(
            p.train(&[], &PowerModel::default()),
            Err(PolarisError::Pipeline(_))
        ));
    }
}
