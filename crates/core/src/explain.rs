//! Explainability integration (paper §IV-B): SHAP waterfalls over the
//! cognition model and rule extraction.

use polaris_ml::{Classifier, Dataset};
use polaris_xai::tree_shap::{tree_shap, ShapExplanation};
use polaris_xai::waterfall::Waterfall;
use polaris_xai::{RuleMiner, RuleSet};

use crate::model::PolarisModel;

/// SHAP machinery bound to one trained model and its background dataset.
#[derive(Clone, Debug)]
pub struct Explainer {
    background: Vec<Vec<f32>>,
    feature_names: Vec<String>,
}

impl Explainer {
    /// Builds an explainer whose background set is drawn (deterministically,
    /// evenly spaced) from the cognition dataset.
    ///
    /// # Panics
    ///
    /// Panics if `dataset` is empty or `max_background == 0`.
    pub fn new(dataset: &Dataset, max_background: usize) -> Self {
        assert!(!dataset.is_empty(), "explainer needs background data");
        assert!(max_background > 0, "background budget must be positive");
        let step = (dataset.len() / max_background).max(1);
        let background: Vec<Vec<f32>> = (0..dataset.len())
            .step_by(step)
            .take(max_background)
            .map(|i| dataset.row(i).to_vec())
            .collect();
        Explainer {
            background,
            feature_names: dataset.feature_names().to_vec(),
        }
    }

    /// Rebuilds an explainer from raw background rows (persistence path).
    ///
    /// # Panics
    ///
    /// Panics if `background` is empty or row widths disagree with
    /// `feature_names`.
    pub fn from_background(background: Vec<Vec<f32>>, feature_names: Vec<String>) -> Self {
        assert!(!background.is_empty(), "explainer needs background data");
        assert!(
            background.iter().all(|r| r.len() == feature_names.len()),
            "background width mismatch"
        );
        Explainer {
            background,
            feature_names,
        }
    }

    /// Background sample count.
    pub fn background_len(&self) -> usize {
        self.background.len()
    }

    /// The background rows.
    pub fn background(&self) -> &[Vec<f32>] {
        &self.background
    }

    /// Feature names (aligned with explanation values).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Exact TreeSHAP explanation of one sample, in margin space.
    pub fn explain(&self, model: &PolarisModel, x: &[f32]) -> ShapExplanation {
        tree_shap(model, &self.background, x)
    }

    /// Waterfall (Fig. 3) for one sample.
    pub fn waterfall(&self, model: &PolarisModel, x: &[f32]) -> Waterfall {
        let e = self.explain(model, x);
        Waterfall::new(&e, &self.feature_names, x)
    }

    /// Global feature importance: mean |φ| per feature over `dataset` (the
    /// "summary plot" companion to the per-sample waterfalls), sorted
    /// descending. At most `max_samples` evenly-spaced samples are explained.
    pub fn global_importance(
        &self,
        model: &PolarisModel,
        dataset: &Dataset,
        max_samples: usize,
    ) -> Vec<(String, f64)> {
        let step = (dataset.len() / max_samples.max(1)).max(1);
        let mut sums = vec![0.0f64; self.feature_names.len()];
        let mut count = 0usize;
        for i in (0..dataset.len()).step_by(step) {
            let e = self.explain(model, dataset.row(i));
            for (s, phi) in sums.iter_mut().zip(&e.values) {
                *s += phi.abs();
            }
            count += 1;
        }
        let mut out: Vec<(String, f64)> = self
            .feature_names
            .iter()
            .cloned()
            .zip(sums.into_iter().map(|s| s / count.max(1) as f64))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Mines Table-V style rules from every sample of `dataset`.
    pub fn mine_rules(
        &self,
        model: &PolarisModel,
        dataset: &Dataset,
        miner: &RuleMiner,
    ) -> RuleSet {
        let samples: Vec<(Vec<f32>, ShapExplanation, f64)> = (0..dataset.len())
            .map(|i| {
                let x = dataset.row(i).to_vec();
                let e = self.explain(model, &x);
                let p = model.predict_proba(&x);
                (x, e, p)
            })
            .collect();
        miner.mine(&samples, &self.feature_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelKind, PolarisConfig};
    use polaris_ml::TreeEnsemble;

    fn trained() -> (PolarisModel, Dataset) {
        let mut d = Dataset::new(vec!["f0".into(), "f1".into(), "f2".into()]);
        for i in 0..240 {
            let f0 = (i % 3 == 0) as u8;
            let f1 = (i % 2 == 0) as u8;
            let f2 = (i % 5 < 3) as u8;
            d.push(&[f0 as f32, f1 as f32, f2 as f32], f0 & f2).unwrap();
        }
        let cfg = PolarisConfig {
            model: ModelKind::Adaboost,
            n_estimators: 20,
            learning_rate: 0.5,
            ..PolarisConfig::fast_profile(5)
        };
        (PolarisModel::train(&d, &cfg).unwrap(), d)
    }

    #[test]
    fn explanations_satisfy_efficiency() {
        let (model, data) = trained();
        let ex = Explainer::new(&data, 32);
        for i in (0..data.len()).step_by(37) {
            let e = ex.explain(&model, data.row(i));
            assert!(e.efficiency_gap().abs() < 1e-8);
        }
    }

    #[test]
    fn informative_features_dominate_shap() {
        let (model, data) = trained();
        let ex = Explainer::new(&data, 32);
        let e = ex.explain(&model, &[1.0, 1.0, 1.0]);
        // f1 is irrelevant to the label; f0 and f2 drive it.
        assert!(e.values[0].abs() > e.values[1].abs());
        assert!(e.values[2].abs() > e.values[1].abs());
    }

    #[test]
    fn waterfall_renders_feature_names() {
        let (model, data) = trained();
        let ex = Explainer::new(&data, 16);
        let w = ex.waterfall(&model, &[1.0, 0.0, 1.0]);
        let text = w.render(5, 16);
        assert!(text.contains("f0"));
        assert!(text.contains("E[f(x)]"));
    }

    #[test]
    fn waterfall_endpoints_match_model() {
        let (model, data) = trained();
        let ex = Explainer::new(&data, 16);
        let x = [1.0f32, 0.0, 1.0];
        let w = ex.waterfall(&model, &x);
        assert!((w.fx - model.margin(&x)).abs() < 1e-9);
    }

    #[test]
    fn rules_capture_the_generating_pattern() {
        let (model, data) = trained();
        let ex = Explainer::new(&data, 32);
        let rules = ex.mine_rules(
            &model,
            &data,
            &RuleMiner {
                conditions_per_rule: 2,
                min_support: 3,
                min_probability: 0.6,
                max_rules: 4,
            },
        );
        assert!(!rules.is_empty(), "pattern f0 & f2 should be minable");
        // The strongest Mask rule should involve f0 and f2.
        let mask_rule = rules
            .rules()
            .iter()
            .find(|r| r.action == polaris_xai::MaskAction::Mask)
            .expect("a mask rule exists");
        let features: Vec<usize> = mask_rule.conditions.iter().map(|c| c.feature).collect();
        assert!(
            features.contains(&0) && features.contains(&2),
            "{features:?}"
        );
    }

    #[test]
    fn background_subsampling_bounded() {
        let (_, data) = trained();
        let ex = Explainer::new(&data, 10);
        assert!(ex.background_len() <= 10);
    }

    #[test]
    fn global_importance_ranks_informative_features() {
        let (model, data) = trained();
        let ex = Explainer::new(&data, 32);
        let imp = ex.global_importance(&model, &data, 60);
        assert_eq!(imp.len(), 3);
        // Sorted descending, all non-negative.
        assert!(imp.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(imp.iter().all(|(_, v)| *v >= 0.0));
        // The noise feature f1 must not rank first.
        assert_ne!(imp[0].0, "f1");
    }
}
