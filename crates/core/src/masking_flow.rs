//! POLARIS masking — paper Algorithm 2.
//!
//! Every gate of the target design is scored by the trained model (optionally
//! refined by the SHAP-mined rules), the scores are sorted descending, the
//! top `Msize` gates are replaced by masked composites, and the result is
//! assessed once for reporting. No TVLA runs inside the timed mitigation
//! path — that is the scalability claim of the paper.

use std::time::Instant;

use polaris_masking::{apply_masking, MaskedDesign};
use polaris_ml::Classifier;
use polaris_netlist::{GateId, GraphView, Netlist};
use polaris_obs::SharedRecorder;
use polaris_sim::{
    run_campaign_parallel, run_campaign_traced, run_fleet, CampaignConfig, CampaignOutcome,
    FleetJob, NeverStop, Parallelism, PowerModel,
};
use polaris_tvla::{adaptive_fleet_job, GateLeakage, LeakageSummary, WelchAccumulator};
use polaris_xai::RuleSet;

use crate::config::PolarisConfig;
use crate::features::StructuralFeatureExtractor;
use crate::model::PolarisModel;
use crate::PolarisError;

/// Outcome of protecting one design.
#[derive(Clone, Debug)]
pub struct MitigationReport {
    /// The masked design with origin bookkeeping.
    pub masked: MaskedDesign,
    /// Leakage summary of the unprotected design.
    pub before: LeakageSummary,
    /// Per-gate leakage of the unprotected design (for Fig.-4 style plots).
    pub before_map: GateLeakage,
    /// Leakage summary of the masked design, attributed to original cells.
    pub after: LeakageSummary,
    /// Per-gate leakage of the masked design attributed to original gates.
    pub after_grouped_abs_t: Vec<f64>,
    /// Gates selected for masking, highest score first.
    pub masked_gates: Vec<GateId>,
    /// Model score of every cell, indexed by gate id (0 for non-cells).
    pub scores: Vec<f64>,
    /// Seconds spent in the mitigation path (features + inference + sort +
    /// transform) — the Table II "Time (s)" entry for POLARIS.
    pub mitigation_time_s: f64,
    /// Seconds spent in the two reporting TVLA campaigns (not part of the
    /// mitigation path).
    pub assessment_time_s: f64,
    /// Fixed-class traces each reporting campaign actually consumed (equal
    /// to the configured budget unless adaptive stopping kicked in; the
    /// after-campaign is pinned to the before-campaign's counts so the
    /// before/after totals compare like for like).
    pub campaign_fixed_traces: usize,
    /// Random-class traces each reporting campaign actually consumed.
    pub campaign_random_traces: usize,
    /// Traces per class the configuration budgeted.
    pub campaign_budget_per_class: usize,
    /// True when the baseline assessment stopped before its budget.
    pub stopped_early: bool,
}

impl MitigationReport {
    /// Total leakage reduction percent (Table II semantics).
    pub fn reduction_pct(&self) -> f64 {
        self.after.reduction_pct_from(&self.before)
    }
}

/// Scores every maskable cell of `design` with the model (+ optional rule
/// adjustment); returns `(gate, score)` sorted descending — Algorithm 2
/// lines 4–8.
pub fn rank_gates(
    design: &Netlist,
    model: &PolarisModel,
    rules: Option<&RuleSet>,
    extractor: &StructuralFeatureExtractor,
) -> Result<Vec<(GateId, f64)>, PolarisError> {
    let view = GraphView::new(design);
    let levels = design.levels()?;
    let mut choices: Vec<(GateId, f64)> = Vec::new();
    for id in design.cell_ids() {
        if design.gate(id).fanin().len() > 2 {
            continue; // not maskable in normalized form
        }
        let x = extractor.extract(design, &view, &levels, id);
        let mut score = model.predict_proba(&x);
        if let Some(rs) = rules {
            score += rs.score_adjustment(&x, 0.15);
        }
        choices.push((id, score));
    }
    choices.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    Ok(choices)
}

/// The baseline reporting campaign of a configuration: the fixed-vs-random
/// budget [`polaris_mask`] assesses before masking. A distributed
/// coordinator plans exactly this campaign over the *normalized* design,
/// merges the worker parts, and hands the fold to
/// [`polaris_mask_with_baseline`] — skipping the in-process baseline run.
pub fn reporting_campaign(config: &PolarisConfig) -> CampaignConfig {
    let mut campaign =
        CampaignConfig::new(config.max_traces, config.max_traces, config.seed ^ 0xA55E55)
            .with_cycles(config.cycles);
    if config.glitch_model {
        campaign = campaign.with_glitches();
    }
    campaign
}

/// Runs the baseline [`reporting_campaign`] of `config` over a *normalized*
/// design in-process (honoring the adaptive-stopping knobs) and returns the
/// folded outcome — exactly what [`polaris_mask_with_baseline`] consumes.
/// The distributed flow replaces this one function with a plan / work /
/// merge round (`polaris_dist::merged_outcome`); everything downstream is
/// shared.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn baseline_outcome(
    design: &Netlist,
    config: &PolarisConfig,
    power: &PowerModel,
) -> Result<CampaignOutcome<WelchAccumulator>, PolarisError> {
    baseline_outcome_traced(design, config, power, polaris_obs::shared_null())
}

/// [`baseline_outcome`] reporting structured trace events to `recorder` —
/// shard/fold spans always, plus the checkpoint census and per-gate audit
/// trail when the configuration is adaptive. The folded outcome is
/// byte-identical to the untraced run.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn baseline_outcome_traced(
    design: &Netlist,
    config: &PolarisConfig,
    power: &PowerModel,
    recorder: SharedRecorder,
) -> Result<CampaignOutcome<WelchAccumulator>, PolarisError> {
    let campaign = reporting_campaign(config);
    // The campaigns run on the sharded parallel engine — the thread knob
    // never changes the statistics. In adaptive mode the baseline stops
    // once its verdict converges.
    let par = config.parallelism();
    let outcome = if config.adaptive {
        polaris_tvla::campaign_outcome_adaptive_traced(
            design,
            power,
            &campaign,
            par,
            &config.sequential_config(),
            recorder,
        )?
    } else {
        run_campaign_traced(
            design,
            power,
            &campaign,
            par,
            usize::MAX,
            &mut NeverStop,
            recorder.as_ref(),
        )?
    };
    Ok(outcome)
}

/// [`baseline_outcome`] for a whole suite: runs every *normalized* design's
/// reporting baseline as one job of a shared-pool fleet
/// ([`polaris_sim::run_fleet`]) instead of campaign-by-campaign, so small
/// designs no longer serialize on their own fold barriers. In adaptive mode
/// each job carries its own cells-scoped sequential stopping rule whose
/// checkpoints fire per job mid-fleet.
///
/// Outcome `i` is byte-identical to `baseline_outcome(&designs[i], …)` —
/// stop round and statistics included — so everything downstream
/// ([`polaris_mask_with_baseline`], budget resolution) is unaffected by the
/// scheduling change.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn baseline_outcomes_fleet(
    designs: &[Netlist],
    config: &PolarisConfig,
    power: &PowerModel,
) -> Result<Vec<CampaignOutcome<WelchAccumulator>>, PolarisError> {
    let campaign = reporting_campaign(config);
    let jobs: Vec<FleetJob<'_, WelchAccumulator>> = designs
        .iter()
        .map(|design| {
            if config.adaptive {
                adaptive_fleet_job(design, power, campaign.clone(), &config.sequential_config())
            } else {
                FleetJob::new(design, power, campaign.clone())
            }
        })
        .collect();
    Ok(run_fleet(jobs, config.parallelism())?)
}

/// Runs Algorithm 2 on a normalized design, masking the `msize` top-ranked
/// gates, then assesses before/after leakage for reporting.
///
/// # Errors
///
/// Propagates netlist/masking/simulation failures.
pub fn polaris_mask(
    design: &Netlist,
    model: &PolarisModel,
    rules: Option<&RuleSet>,
    extractor: &StructuralFeatureExtractor,
    config: &PolarisConfig,
    power: &PowerModel,
    msize: usize,
) -> Result<MitigationReport, PolarisError> {
    // Reporting baseline (outside the mitigation path); its cost is
    // attributed to this report's assessment time.
    let assess_start = Instant::now();
    let baseline = baseline_outcome(design, config, power)?;
    let baseline_time_s = assess_start.elapsed().as_secs_f64();
    let mut report = polaris_mask_with_baseline(
        design, model, rules, extractor, config, power, msize, baseline,
    )?;
    report.assessment_time_s += baseline_time_s;
    Ok(report)
}

/// Everything [`polaris_mask_with_baseline`] computes *before* the
/// after-campaign runs: the consumed baseline, the timed mitigation path,
/// and the pinned after-campaign configuration. Splitting the report here
/// lets suite flows ([`crate::pipeline::TrainedPolaris::mask_designs`])
/// run every design's after-campaign as one fleet on a shared pool and
/// still assemble per-design reports identical to the solo path.
pub(crate) struct PendingMitigation {
    masked: MaskedDesign,
    before: LeakageSummary,
    before_map: GateLeakage,
    scores: Vec<f64>,
    selected: Vec<GateId>,
    mitigation_time_s: f64,
    assessment_time_s: f64,
    campaign_fixed_traces: usize,
    campaign_random_traces: usize,
    budget_per_class: usize,
    stopped_early: bool,
    /// The pinned-fixed-vector, re-seeded reporting campaign the masked
    /// design must be assessed with.
    pub(crate) after_campaign: CampaignConfig,
}

impl PendingMitigation {
    /// The masked design whose `after_campaign` still has to run.
    pub(crate) fn masked_netlist(&self) -> &Netlist {
        &self.masked.netlist
    }
}

/// Consumes the baseline and runs the (timed) TVLA-free mitigation path —
/// everything of [`polaris_mask_with_baseline`] except the after-campaign.
pub(crate) fn prepare_mitigation(
    design: &Netlist,
    model: &PolarisModel,
    rules: Option<&RuleSet>,
    extractor: &StructuralFeatureExtractor,
    config: &PolarisConfig,
    msize: usize,
    baseline: CampaignOutcome<WelchAccumulator>,
) -> Result<PendingMitigation, PolarisError> {
    let mut campaign = reporting_campaign(config);
    campaign.n_fixed = baseline.stats.fixed_traces;
    campaign.n_random = baseline.stats.random_traces;
    let stopped_early = baseline.stats.stopped_early;

    let assess_start = Instant::now();
    let before_map = baseline.sink.leakage();
    let before = before_map.summarize(design);
    let assessment_time_s = assess_start.elapsed().as_secs_f64();

    // Mitigation path (timed): rank → select → transform.
    let mitigation_start = Instant::now();
    let ranked = rank_gates(design, model, rules, extractor)?;
    let mut scores = vec![0.0f64; design.gate_count()];
    for (id, s) in &ranked {
        scores[id.index()] = *s;
    }
    let selected: Vec<GateId> = ranked.iter().take(msize).map(|(id, _)| *id).collect();
    let masked = apply_masking(design, &selected, config.style)?;
    let mitigation_time_s = mitigation_start.elapsed().as_secs_f64();

    // Reporting follow-up: re-seed the sampling streams but pin the fixed
    // class vector, so the before/after totals compare like for like.
    let mut after_campaign = campaign.clone();
    after_campaign.fixed_vector = Some(campaign.resolve_fixed_vector(design.data_inputs().len()));
    after_campaign.seed = campaign.seed.wrapping_add(1);

    Ok(PendingMitigation {
        masked,
        before,
        before_map,
        scores,
        selected,
        mitigation_time_s,
        assessment_time_s,
        campaign_fixed_traces: campaign.n_fixed,
        campaign_random_traces: campaign.n_random,
        budget_per_class: config.max_traces,
        stopped_early,
        after_campaign,
    })
}

/// Attributes the after-campaign's folded accumulator back to original
/// gates and assembles the final [`MitigationReport`]. `after_seconds` is
/// the wall clock the caller spent acquiring `after_acc`.
pub(crate) fn finish_mitigation(
    design: &Netlist,
    pending: PendingMitigation,
    after_acc: WelchAccumulator,
    after_seconds: f64,
) -> MitigationReport {
    let assess_start = Instant::now();
    let after_leakage = after_acc.leakage();
    let after_grouped_abs_t = grouped_abs_t(design, &pending.masked, &after_leakage);
    let after = summarize_grouped(design, &after_grouped_abs_t);
    let assessment_time_s =
        pending.assessment_time_s + after_seconds + assess_start.elapsed().as_secs_f64();

    MitigationReport {
        masked: pending.masked,
        before: pending.before,
        before_map: pending.before_map,
        after,
        after_grouped_abs_t,
        masked_gates: pending.selected,
        scores: pending.scores,
        mitigation_time_s: pending.mitigation_time_s,
        assessment_time_s,
        campaign_fixed_traces: pending.campaign_fixed_traces,
        campaign_random_traces: pending.campaign_random_traces,
        campaign_budget_per_class: pending.budget_per_class,
        stopped_early: pending.stopped_early,
    }
}

/// [`polaris_mask`] with the baseline assessment already done: consumes a
/// pre-folded [`CampaignOutcome`] over [`reporting_campaign`]`(config)` —
/// typically folded centrally from distributed shard states
/// (`polaris_dist::merged_outcome`), carried over from an earlier adaptive
/// run, or pulled out of a fleet ([`baseline_outcomes_fleet`]) — instead of
/// re-simulating the baseline in-process.
///
/// The outcome's [`polaris_sim::CampaignStats`] drive the after-campaign
/// exactly as in [`polaris_mask`]: the follow-up is pinned to the
/// baseline's consumed trace counts, so before/after √n-scaled |t| totals
/// compare like for like. `report.assessment_time_s` covers only the work
/// done here (the after-campaign); the caller owns the baseline's cost
/// accounting.
///
/// # Errors
///
/// Propagates netlist/masking/simulation failures.
#[allow(clippy::too_many_arguments)] // mirrors polaris_mask + the baseline
pub fn polaris_mask_with_baseline(
    design: &Netlist,
    model: &PolarisModel,
    rules: Option<&RuleSet>,
    extractor: &StructuralFeatureExtractor,
    config: &PolarisConfig,
    power: &PowerModel,
    msize: usize,
    baseline: CampaignOutcome<WelchAccumulator>,
) -> Result<MitigationReport, PolarisError> {
    polaris_mask_with_baseline_traced(
        design,
        model,
        rules,
        extractor,
        config,
        power,
        msize,
        baseline,
        polaris_obs::shared_null(),
    )
}

/// [`polaris_mask_with_baseline`] with a trace recorder: the masked
/// design's after-campaign emits shard/fold spans into the same trace as
/// the (caller-run) baseline. The report is byte-identical to the untraced
/// run in every statistical field.
///
/// # Errors
///
/// Propagates netlist/masking/simulation failures.
#[allow(clippy::too_many_arguments)] // mirrors polaris_mask_with_baseline
pub fn polaris_mask_with_baseline_traced(
    design: &Netlist,
    model: &PolarisModel,
    rules: Option<&RuleSet>,
    extractor: &StructuralFeatureExtractor,
    config: &PolarisConfig,
    power: &PowerModel,
    msize: usize,
    baseline: CampaignOutcome<WelchAccumulator>,
    recorder: SharedRecorder,
) -> Result<MitigationReport, PolarisError> {
    let par = config.parallelism();
    let pending = prepare_mitigation(design, model, rules, extractor, config, msize, baseline)?;
    let assess_start = Instant::now();
    // Full-grid never-stopping schedule: byte-identical fold order to
    // `run_campaign_parallel`, with the engine's spans on top.
    let outcome = run_campaign_traced::<WelchAccumulator, _>(
        pending.masked_netlist(),
        power,
        &pending.after_campaign,
        par,
        usize::MAX,
        &mut NeverStop,
        recorder.as_ref(),
    )?;
    let after_seconds = assess_start.elapsed().as_secs_f64();
    Ok(finish_mitigation(
        design,
        pending,
        outcome.sink,
        after_seconds,
    ))
}

/// Assesses a masked design and attributes leakage back to the original
/// gates: returns the per-original-gate mean `|t|` and its cell summary.
/// This is the reporting primitive shared by the experiment harness.
///
/// The campaign runs on the sharded engine across `parallelism` workers;
/// results are bit-identical at any thread count.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn assess_grouped(
    original: &Netlist,
    masked: &MaskedDesign,
    power: &PowerModel,
    campaign: &CampaignConfig,
    parallelism: Parallelism,
) -> Result<(LeakageSummary, Vec<f64>), PolarisError> {
    let acc: WelchAccumulator =
        run_campaign_parallel(&masked.netlist, power, campaign, parallelism)?;
    let grouped = grouped_abs_t(original, masked, &acc.leakage());
    let summary = summarize_grouped(original, &grouped);
    Ok((summary, grouped))
}

/// [`assess_grouped`] for several masked variants of one design at once:
/// every variant's reporting campaign becomes a job of a shared-pool fleet,
/// so the variants' shards interleave on the same workers instead of each
/// variant serializing on its own fold barrier (the Table II harness
/// assesses three mask sizes per design this way). `campaigns[i]` is
/// variant `i`'s configuration — variants may re-seed independently.
///
/// Entry `i` is byte-identical to
/// `assess_grouped(original, &variants[i], power, &campaigns[i], …)`.
///
/// # Panics
///
/// Panics if `variants` and `campaigns` disagree on length.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn assess_grouped_fleet(
    original: &Netlist,
    variants: &[MaskedDesign],
    power: &PowerModel,
    campaigns: &[CampaignConfig],
    parallelism: Parallelism,
) -> Result<Vec<(LeakageSummary, Vec<f64>)>, PolarisError> {
    assert_eq!(
        variants.len(),
        campaigns.len(),
        "one campaign per masked variant"
    );
    let jobs: Vec<FleetJob<'_, WelchAccumulator>> = variants
        .iter()
        .zip(campaigns)
        .map(|(v, c)| FleetJob::new(&v.netlist, power, c.clone()))
        .collect();
    let outcomes = run_fleet(jobs, parallelism)?;
    Ok(variants
        .iter()
        .zip(outcomes)
        .map(|(masked, outcome)| {
            let grouped = grouped_abs_t(original, masked, &outcome.sink.leakage());
            let summary = summarize_grouped(original, &grouped);
            (summary, grouped)
        })
        .collect())
}

fn grouped_abs_t(original: &Netlist, masked: &MaskedDesign, leakage: &GateLeakage) -> Vec<f64> {
    let mut sum = vec![0.0f64; original.gate_count()];
    let mut count = vec![0usize; original.gate_count()];
    for (new_idx, origin) in masked.origin.iter().enumerate() {
        if let Some(orig) = origin {
            sum[orig.index()] += leakage.abs_t(GateId::new(new_idx));
            count[orig.index()] += 1;
        }
    }
    sum.iter()
        .zip(&count)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

fn summarize_grouped(original: &Netlist, grouped: &[f64]) -> LeakageSummary {
    let cells = original.cell_ids();
    let mut total = 0.0;
    let mut max: f64 = 0.0;
    let mut leaky = 0;
    for &id in &cells {
        let t = grouped[id.index()];
        total += t;
        max = max.max(t);
        if t > polaris_tvla::TVLA_THRESHOLD {
            leaky += 1;
        }
    }
    LeakageSummary {
        cells: cells.len(),
        mean_abs_t: if cells.is_empty() {
            0.0
        } else {
            total / cells.len() as f64
        },
        total_abs_t: total,
        max_abs_t: max,
        leaky_cells: leaky,
    }
}
