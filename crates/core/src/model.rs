//! The trained POLARIS classifier: a thin dispatcher over the three model
//! families with the paper's imbalance handling baked in (SMOTE for Random
//! Forest, class-weighted training for the boosters — §V-B).

use polaris_ml::adaboost::{AdaBoost, AdaBoostConfig};
use polaris_ml::forest::{ForestConfig, RandomForest};
use polaris_ml::gbdt::{GbdtConfig, GradientBoost};
use polaris_ml::smote::{smote, SmoteConfig};
use polaris_ml::{Classifier, Dataset, Tree, TreeEnsemble};

use crate::config::{ModelKind, PolarisConfig};
use crate::PolarisError;

/// A trained cognition model.
#[derive(Clone, Debug)]
pub struct PolarisModel {
    kind: ModelKind,
    inner: Inner,
}

#[derive(Clone, Debug)]
enum Inner {
    Forest(RandomForest),
    Gbdt(GradientBoost),
    Ada(AdaBoost),
}

impl PolarisModel {
    /// Trains the configured model on a cognition dataset, applying the
    /// paper's per-model imbalance strategy.
    ///
    /// # Errors
    ///
    /// Returns [`PolarisError::Training`] when the dataset is degenerate
    /// (empty or single-class).
    pub fn train(dataset: &Dataset, config: &PolarisConfig) -> Result<Self, PolarisError> {
        let (neg, pos) = dataset.class_counts();
        if dataset.is_empty() || neg == 0 || pos == 0 {
            return Err(PolarisError::Training(format!(
                "cognition dataset is degenerate: {neg} negative / {pos} positive samples \
                 (lower theta_r or raise iterations)"
            )));
        }
        let inner = match config.model {
            ModelKind::RandomForest => {
                let balanced = smote(
                    dataset,
                    &SmoteConfig {
                        seed: config.seed ^ 0x5307E,
                        ..Default::default()
                    },
                )
                .map_err(|e| PolarisError::Training(format!("smote failed: {e}")))?;
                Inner::Forest(RandomForest::fit(
                    &balanced,
                    &ForestConfig {
                        n_trees: config.n_estimators,
                        max_depth: config.max_depth + 3,
                        max_features: None,
                        seed: config.seed,
                    },
                ))
            }
            ModelKind::Xgboost => {
                let weights = dataset.balanced_weights()?;
                Inner::Gbdt(
                    GradientBoost::fit_weighted(
                        dataset,
                        &weights,
                        &GbdtConfig {
                            n_estimators: config.n_estimators,
                            learning_rate: config.learning_rate.max(1e-6),
                            max_depth: config.max_depth,
                            ..Default::default()
                        },
                    )
                    .map_err(PolarisError::Training)?,
                )
            }
            ModelKind::Adaboost => {
                let weights = dataset.balanced_weights()?;
                Inner::Ada(
                    AdaBoost::fit_weighted(
                        dataset,
                        &weights,
                        &AdaBoostConfig {
                            n_estimators: config.n_estimators,
                            learning_rate: config.learning_rate.max(1e-6),
                            max_depth: config.max_depth,
                            seed: config.seed,
                        },
                    )
                    .map_err(PolarisError::Training)?,
                )
            }
        };
        Ok(PolarisModel {
            kind: config.model,
            inner,
        })
    }

    /// Which family this model belongs to.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Extracts the persistable ensemble representation.
    pub fn to_data(&self) -> polaris_ml::persist::EnsembleData {
        match &self.inner {
            Inner::Forest(m) => m.to_data(),
            Inner::Gbdt(m) => m.to_data(),
            Inner::Ada(m) => m.to_data(),
        }
    }

    /// Rebuilds a model from persisted ensemble data.
    ///
    /// # Errors
    ///
    /// Returns [`PolarisError::Training`] when the data's family tag does not
    /// name a known model.
    pub fn from_data(data: polaris_ml::persist::EnsembleData) -> Result<Self, PolarisError> {
        let (kind, inner) = match data.family.as_str() {
            "random_forest" => (
                ModelKind::RandomForest,
                Inner::Forest(
                    RandomForest::from_data(data)
                        .map_err(|e| PolarisError::Training(e.to_string()))?,
                ),
            ),
            "gbdt" => (
                ModelKind::Xgboost,
                Inner::Gbdt(
                    GradientBoost::from_data(data)
                        .map_err(|e| PolarisError::Training(e.to_string()))?,
                ),
            ),
            "adaboost" => (
                ModelKind::Adaboost,
                Inner::Ada(
                    AdaBoost::from_data(data).map_err(|e| PolarisError::Training(e.to_string()))?,
                ),
            ),
            other => {
                return Err(PolarisError::Training(format!(
                    "unknown model family `{other}`"
                )))
            }
        };
        Ok(PolarisModel { kind, inner })
    }
}

impl Classifier for PolarisModel {
    fn predict_proba(&self, x: &[f32]) -> f64 {
        match &self.inner {
            Inner::Forest(m) => m.predict_proba(x),
            Inner::Gbdt(m) => m.predict_proba(x),
            Inner::Ada(m) => m.predict_proba(x),
        }
    }
}

impl TreeEnsemble for PolarisModel {
    fn weighted_trees(&self) -> Vec<(f64, &Tree)> {
        match &self.inner {
            Inner::Forest(m) => m.weighted_trees(),
            Inner::Gbdt(m) => m.weighted_trees(),
            Inner::Ada(m) => m.weighted_trees(),
        }
    }

    fn base_margin(&self) -> f64 {
        match &self.inner {
            Inner::Forest(m) => m.base_margin(),
            Inner::Gbdt(m) => m.base_margin(),
            Inner::Ada(m) => m.base_margin(),
        }
    }

    fn margin_to_proba(&self, margin: f64) -> f64 {
        match &self.inner {
            Inner::Forest(m) => m.margin_to_proba(margin),
            Inner::Gbdt(m) => m.margin_to_proba(margin),
            Inner::Ada(m) => m.margin_to_proba(margin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cognition_like(n: usize) -> Dataset {
        // Imbalanced binary dataset with a learnable pattern: positive iff
        // f0 and f2 set, ~20% positive.
        let mut d = Dataset::new(vec!["f0".into(), "f1".into(), "f2".into()]);
        for i in 0..n {
            let f0 = (i % 3 == 0) as u8;
            let f1 = (i % 2 == 0) as u8;
            let f2 = (i % 5 < 3) as u8;
            let y = f0 & f2;
            d.push(&[f0 as f32, f1 as f32, f2 as f32], y).unwrap();
        }
        d
    }

    fn cfg(kind: ModelKind) -> PolarisConfig {
        PolarisConfig {
            model: kind,
            n_estimators: 25,
            learning_rate: 0.5,
            ..PolarisConfig::fast_profile(3)
        }
    }

    #[test]
    fn all_three_families_train_and_classify() {
        let d = cognition_like(300);
        for kind in ModelKind::ALL {
            let m = PolarisModel::train(&d, &cfg(kind)).unwrap();
            assert_eq!(m.kind(), kind);
            assert!(
                m.predict_proba(&[1.0, 0.0, 1.0]) > m.predict_proba(&[0.0, 0.0, 0.0]),
                "{} failed to separate the pattern",
                kind.name()
            );
        }
    }

    #[test]
    fn degenerate_dataset_rejected() {
        let mut single = Dataset::new(vec!["a".into()]);
        single.push(&[1.0], 1).unwrap();
        single.push(&[0.5], 1).unwrap();
        for kind in ModelKind::ALL {
            assert!(PolarisModel::train(&single, &cfg(kind)).is_err());
        }
    }

    #[test]
    fn ensemble_interface_consistent() {
        let d = cognition_like(200);
        for kind in ModelKind::ALL {
            let m = PolarisModel::train(&d, &cfg(kind)).unwrap();
            let x = [1.0f32, 1.0, 1.0];
            let p_from_margin = m.margin_to_proba(m.margin(&x));
            assert!(
                (p_from_margin - m.predict_proba(&x)).abs() < 1e-9,
                "{}: {p_from_margin} vs {}",
                kind.name(),
                m.predict_proba(&x)
            );
            assert!(!m.weighted_trees().is_empty());
        }
    }

    #[test]
    fn deterministic_training() {
        let d = cognition_like(200);
        let m1 = PolarisModel::train(&d, &cfg(ModelKind::Adaboost)).unwrap();
        let m2 = PolarisModel::train(&d, &cfg(ModelKind::Adaboost)).unwrap();
        assert_eq!(
            m1.predict_proba(&[1.0, 0.0, 1.0]),
            m2.predict_proba(&[1.0, 0.0, 1.0])
        );
    }
}
