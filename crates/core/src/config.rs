//! POLARIS configuration (the "parameterized tool" of the paper's
//! contribution list).

use polaris_masking::MaskingStyle;
use polaris_sim::Parallelism;
use serde::{Deserialize, Serialize};

/// Which classifier POLARIS trains on the cognition dataset (Table III).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Random forest (paired with SMOTE oversampling).
    RandomForest,
    /// XGBoost-style gradient-boosted trees (weighted training).
    Xgboost,
    /// SAMME AdaBoost (weighted training) — the paper's best performer.
    #[default]
    Adaboost,
}

impl ModelKind {
    /// All kinds, in the paper's Table III column order.
    pub const ALL: [ModelKind; 3] = [
        ModelKind::RandomForest,
        ModelKind::Xgboost,
        ModelKind::Adaboost,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::RandomForest => "Random Forest",
            ModelKind::Xgboost => "XGBoost",
            ModelKind::Adaboost => "AdaBoost",
        }
    }
}

/// Full parameterization of the POLARIS pipeline.
///
/// Defaults follow the paper's §V-A experiment configuration scaled to the
/// generated benchmark sizes; [`PolarisConfig::paper_profile`] restores the
/// published values and [`PolarisConfig::fast_profile`] shrinks everything
/// for tests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolarisConfig {
    /// Gates masked per cognition iteration (paper: `Msize = 200`).
    pub msize: usize,
    /// BFS locality — neighbors per feature vector (paper: `L = 7`).
    pub locality: usize,
    /// Maximum cognition iterations per design (paper: `itr = 100`).
    pub iterations: usize,
    /// Leakage-reduction ratio counted as a "good" mask (paper: `θr = 0.7`).
    pub theta_r: f64,
    /// Trace *budget* per TVLA class (paper: 10 000). Non-adaptive
    /// campaigns consume it fully; with [`PolarisConfig::adaptive`] the
    /// sequential stopping rule may terminate a campaign earlier.
    pub max_traces: usize,
    /// Early-stop campaigns once every gate's leakage verdict has converged
    /// (round-checkpointed sequential stopping; see
    /// [`polaris_tvla::sequential`]).
    pub adaptive: bool,
    /// Confidence level of the adaptive clean verdict: the per-gate
    /// false-clean budget `α = 1 − confidence` is alpha-spent across the
    /// campaign's checkpoints.
    pub confidence: f64,
    /// Clock cycles per trace for sequential designs.
    pub cycles: usize,
    /// Use the unit-delay glitch-aware switching model for every campaign
    /// (slower, physically richer; leakage concentrates in deep logic).
    pub glitch_model: bool,
    /// Classifier family.
    pub model: ModelKind,
    /// Boosting learning rate (paper: α = 0.01 for XGBoost/AdaBoost).
    pub learning_rate: f64,
    /// Boosting rounds / forest size.
    pub n_estimators: usize,
    /// Tree depth for the weak learners.
    pub max_depth: usize,
    /// Masked-gate family inserted by the transform.
    #[serde(skip, default)]
    pub style: MaskingStyle,
    /// Background samples for SHAP explanations.
    pub shap_background: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for every trace campaign (0 = all available cores).
    /// Purely a throughput knob: the sharded campaign engine is
    /// bit-identical at any thread count.
    pub threads: usize,
}

impl Default for PolarisConfig {
    fn default() -> Self {
        PolarisConfig {
            msize: 40,
            locality: 7,
            iterations: 12,
            theta_r: 0.7,
            max_traces: 600,
            adaptive: false,
            confidence: 0.95,
            cycles: 1,
            glitch_model: false,
            model: ModelKind::Adaboost,
            learning_rate: 0.01,
            n_estimators: 80,
            max_depth: 3,
            style: MaskingStyle::Trichina,
            shap_background: 64,
            seed: 0,
            threads: 0,
        }
    }
}

impl PolarisConfig {
    /// The paper's published configuration (§V-A): `Msize = 200`, `L = 7`,
    /// `itr = 100`, `θr = 0.7`, 10 000 traces, α = 0.01.
    pub fn paper_profile(seed: u64) -> Self {
        PolarisConfig {
            msize: 200,
            iterations: 100,
            max_traces: 10_000,
            seed,
            ..Default::default()
        }
    }

    /// A laptop/test profile: small trace counts and few iterations, single
    /// campaign worker (tests already parallelize at the process level).
    pub fn fast_profile(seed: u64) -> Self {
        PolarisConfig {
            msize: 25,
            iterations: 4,
            max_traces: 200,
            n_estimators: 30,
            shap_background: 16,
            seed,
            threads: 1,
            ..Default::default()
        }
    }

    /// The campaign worker budget as a [`Parallelism`] value
    /// (`Parallelism::new` already treats 0 as "all cores").
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.threads)
    }

    /// The sequential stopping rule parameters implied by
    /// [`PolarisConfig::confidence`] (only consulted when
    /// [`PolarisConfig::adaptive`] is set).
    pub fn sequential_config(&self) -> polaris_tvla::SequentialConfig {
        polaris_tvla::SequentialConfig::with_confidence(self.confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper_shape() {
        let c = PolarisConfig::default();
        assert_eq!(c.locality, 7);
        assert!((c.theta_r - 0.7).abs() < 1e-12);
        assert_eq!(c.model, ModelKind::Adaboost);
        assert!((c.learning_rate - 0.01).abs() < 1e-12);
    }

    #[test]
    fn paper_profile_restores_published_values() {
        let c = PolarisConfig::paper_profile(1);
        assert_eq!(c.msize, 200);
        assert_eq!(c.iterations, 100);
        assert_eq!(c.max_traces, 10_000);
    }

    #[test]
    fn adaptive_defaults_off_with_sane_confidence() {
        let c = PolarisConfig::default();
        assert!(!c.adaptive, "adaptive stopping is opt-in");
        let s = c.sequential_config();
        assert!((s.alpha - (1.0 - c.confidence)).abs() < 1e-12);
        assert_eq!(s.threshold, polaris_tvla::TVLA_THRESHOLD);
    }

    #[test]
    fn parallelism_resolves_auto_and_explicit() {
        let auto = PolarisConfig::default();
        assert_eq!(auto.threads, 0);
        assert!(auto.parallelism().threads() >= 1);
        let fixed = PolarisConfig {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(fixed.parallelism().threads(), 3);
        assert_eq!(PolarisConfig::fast_profile(1).parallelism().threads(), 1);
    }

    #[test]
    fn model_kind_names() {
        assert_eq!(ModelKind::Adaboost.name(), "AdaBoost");
        assert_eq!(ModelKind::ALL.len(), 3);
    }

    #[test]
    fn config_serializes() {
        let c = PolarisConfig::fast_profile(3);
        let json = serde_json_like(&c);
        assert!(json.contains("msize"));
    }

    /// Minimal smoke check that serde derives compile and run; the project
    /// intentionally has no serde_json dependency, so use the debug format.
    fn serde_json_like(c: &PolarisConfig) -> String {
        format!("{c:?}")
    }
}
