//! Plain-text table rendering shared by the experiment harness.

/// A simple left-padded text table with a header row.
///
/// ```
/// use polaris::report::TextTable;
///
/// let mut t = TextTable::new(vec!["Design".into(), "Reduction %".into()]);
/// t.push_row(vec!["des3".into(), "54.1".into()]);
/// let s = t.render();
/// assert!(s.contains("des3"));
/// assert!(s.contains("Reduction %"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.chars().count();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..width[c] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals (helper for table cells).
pub fn fmt_f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["A".into(), "Bee".into()]);
        t.push_row(vec!["longer".into(), "1".into()]);
        t.push_row(vec!["x".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column B starts at the same offset in every row.
        let col = lines[0].find("Bee").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["A".into()]);
        t.push_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn fmt_f_digits() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(54.089, 1), "54.1");
    }
}
