//! POLARIS: explainable-AI guided power side-channel leakage mitigation.
//!
//! This crate is the paper's primary contribution — a design-for-security
//! framework that learns *where to insert masking gates* from automatically
//! generated training data, then masks unseen designs without TVLA in the
//! loop:
//!
//! 1. **Cognition generation** ([`cognition`], paper Algorithm 1): random
//!    masking experiments on small training designs are labelled by their
//!    measured leakage reduction (`rRatio ≥ θr` → "good"), each sample
//!    described by *structural features* of the masked gate's
//!    BFS-`L` neighborhood ([`features`]).
//! 2. **Model training** ([`model`]): AdaBoost / XGBoost-style GBDT /
//!    Random Forest on the cognition dataset (Table III), with SMOTE or
//!    class-weighting for the θr-induced imbalance.
//! 3. **Explainability** ([`explain`], paper §IV-B): exact TreeSHAP
//!    waterfalls (Fig. 3) and distilled human-readable masking rules
//!    (Table V) that can refine or replace the model at inference.
//! 4. **Masking** ([`masking_flow`], paper Algorithm 2): every gate of the
//!    target design is scored structurally, the top `Msize` are replaced by
//!    Trichina composites, and the result is assessed once for reporting.
//!
//! The end-to-end transfer-learning workflow (train on ISCAS-85-like
//! designs, protect unseen EPFL/CEP-like designs) lives in [`pipeline`].
//!
//! # Example
//!
//! ```no_run
//! use polaris::pipeline::{PolarisPipeline, MaskBudget};
//! use polaris::config::PolarisConfig;
//! use polaris_netlist::generators;
//! use polaris_sim::PowerModel;
//!
//! # fn main() -> Result<(), polaris::PolarisError> {
//! let config = PolarisConfig::fast_profile(42);
//! let pipeline = PolarisPipeline::new(config);
//! let power = PowerModel::default();
//!
//! // Train on the (generated) ISCAS-85 suite.
//! let training = generators::training_suite(1, 7);
//! let trained = pipeline.train(&training, &power)?;
//!
//! // Protect an unseen design, masking 50% of its leaky gates.
//! let target = generators::des3(1, 99);
//! let report = trained.mask_design(&target, &power, MaskBudget::LeakyFraction(0.5))?;
//! println!("leakage reduction: {:.1}%", report.reduction_pct());
//! # Ok(())
//! # }
//! ```

pub mod cognition;
pub mod config;
pub mod explain;
pub mod features;
pub mod masking_flow;
pub mod model;
pub mod persist;
pub mod pipeline;
pub mod report;

pub use config::{ModelKind, PolarisConfig};
pub use features::StructuralFeatureExtractor;
pub use masking_flow::MitigationReport;
pub use model::PolarisModel;
pub use pipeline::{MaskBudget, PolarisPipeline, TrainedPolaris};

use std::error::Error;
use std::fmt;

/// Unified error type for the POLARIS pipeline.
#[derive(Debug)]
pub enum PolarisError {
    /// Netlist-level failure (cycles, dangling references).
    Netlist(polaris_netlist::NetlistError),
    /// Masking transform failure.
    Masking(polaris_masking::MaskingError),
    /// Dataset construction failure.
    Dataset(polaris_ml::DatasetError),
    /// Model training failure.
    Training(String),
    /// Pipeline misuse (empty training set, no maskable gates, …).
    Pipeline(String),
}

impl fmt::Display for PolarisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolarisError::Netlist(e) => write!(f, "netlist error: {e}"),
            PolarisError::Masking(e) => write!(f, "masking error: {e}"),
            PolarisError::Dataset(e) => write!(f, "dataset error: {e}"),
            PolarisError::Training(m) => write!(f, "training error: {m}"),
            PolarisError::Pipeline(m) => write!(f, "pipeline error: {m}"),
        }
    }
}

impl Error for PolarisError {}

impl From<polaris_netlist::NetlistError> for PolarisError {
    fn from(e: polaris_netlist::NetlistError) -> Self {
        PolarisError::Netlist(e)
    }
}

impl From<polaris_masking::MaskingError> for PolarisError {
    fn from(e: polaris_masking::MaskingError) -> Self {
        PolarisError::Masking(e)
    }
}

impl From<polaris_ml::DatasetError> for PolarisError {
    fn from(e: polaris_ml::DatasetError) -> Self {
        PolarisError::Dataset(e)
    }
}
