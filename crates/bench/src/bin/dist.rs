//! Distributed-campaign bench: measures the overhead the `polaris-dist`
//! subsystem adds on top of the in-process engine — per-part execution
//! (partition overhead) and the central decode+fold (merge throughput) —
//! and verifies the folded statistics stay byte-identical to a
//! single-process run at every partitioning. Emits `BENCH_dist.json`.
//!
//! ```text
//! cargo run --release -p polaris-bench --bin dist -- [flags]
//!
//! --quick      CI smoke profile (small design, few traces)
//! --design NAME ISCAS-like design to simulate         (default c1908)
//! --scale N    generator scale factor                 (default 1)
//! --traces N   traces per TVLA class                  (default 20000)
//! --seed N     campaign master seed                   (default 7)
//! --out PATH   output path                            (default BENCH_dist.json)
//! ```

use std::time::Instant;

use polaris_dist::{execute_part, merge_parts, Merged};
use polaris_netlist::generators;
use polaris_sim::campaign::shard_grid;
use polaris_sim::{CampaignConfig, Parallelism, PowerModel};
use polaris_tvla::{assess_parallel, WelchAccumulator};

struct Args {
    quick: bool,
    design: String,
    scale: u32,
    traces: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        design: "c1908".to_string(),
        scale: 1,
        traces: 20_000,
        seed: 7,
        out: "BENCH_dist.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut traces_set = false;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--quick" => {
                a.quick = true;
                i += 1;
            }
            "--design" => {
                a.design = need(i).to_string();
                i += 2;
            }
            "--scale" => {
                a.scale = need(i).parse().expect("--scale takes an integer");
                i += 2;
            }
            "--traces" => {
                a.traces = need(i).parse().expect("--traces takes an integer");
                traces_set = true;
                i += 2;
            }
            "--seed" => {
                a.seed = need(i).parse().expect("--seed takes an integer");
                i += 2;
            }
            "--out" => {
                a.out = need(i).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --quick  --design NAME  --scale N  --traces N  --seed N  --out PATH"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    if a.quick {
        if !traces_set {
            a.traces = 2_000;
        }
        if a.design == "c1908" {
            a.design = "c432".to_string();
        }
    }
    a
}

fn main() {
    let args = parse_args();
    let netlist =
        generators::iscas_like(&args.design, args.scale, args.seed).unwrap_or_else(|| {
            eprintln!("unknown ISCAS-like design `{}`", args.design);
            std::process::exit(2);
        });
    let model = PowerModel::default();
    let cfg = CampaignConfig::new(args.traces, args.traces, args.seed);
    let n_shards = shard_grid(&cfg).len();
    let par = Parallelism::auto();

    eprintln!(
        "[dist bench] {} (scale {}): {} gates, {} traces/class, {} shards",
        args.design,
        args.scale,
        netlist.gate_count(),
        args.traces,
        n_shards
    );

    // Single-process reference: the t-map every partitioning must hit.
    let t0 = Instant::now();
    let reference = assess_parallel(&netlist, &model, &cfg, par).expect("campaign runs");
    let single_seconds = t0.elapsed().as_secs_f64();
    let reference_bits: Vec<u64> = netlist
        .ids()
        .map(|id| reference.result(id).t.to_bits())
        .collect();
    eprintln!("  single-process reference: {single_seconds:.3}s");

    let mut rows: Vec<String> = Vec::new();
    let mut all_identical = true;
    for parts in [1usize, 2, 4] {
        // Work phase: every part executed in this process, one after the
        // other (each part would be its own host in a real deployment).
        // `work_seconds_max` is the distributed critical path; the sum over
        // parts vs the single-process run is the partition overhead.
        let mut part_files: Vec<Vec<u8>> = Vec::new();
        let mut work_total = 0.0f64;
        let mut work_max = 0.0f64;
        for part in 0..parts {
            let t0 = Instant::now();
            let bytes = execute_part::<WelchAccumulator>(&netlist, &model, &cfg, par, part, parts)
                .expect("part executes");
            let secs = t0.elapsed().as_secs_f64();
            work_total += secs;
            work_max = work_max.max(secs);
            part_files.push(bytes);
        }
        let shard_bytes: usize = part_files.iter().map(Vec::len).sum();

        // Merge phase: decode + canonical fold + t-map derivation — the
        // coordinator's entire job.
        let t0 = Instant::now();
        let merged: Merged<WelchAccumulator> =
            merge_parts(part_files.iter().map(Vec::as_slice), None).expect("parts merge");
        let leakage = merged.state.leakage();
        let merge_seconds = t0.elapsed().as_secs_f64();

        let bits: Vec<u64> = netlist
            .ids()
            .map(|id| leakage.result(id).t.to_bits())
            .collect();
        let identical = bits == reference_bits;
        all_identical &= identical;

        let overhead_pct = (work_total / single_seconds.max(1e-9) - 1.0) * 100.0;
        let shards_per_sec = n_shards as f64 / merge_seconds.max(1e-9);
        let mb_per_sec = shard_bytes as f64 / 1e6 / merge_seconds.max(1e-9);
        eprintln!(
            "  {parts} part(s): work {work_total:.3}s (max {work_max:.3}s, \
             overhead {overhead_pct:+.1}%), merge {merge_seconds:.4}s \
             ({shards_per_sec:.0} shards/s, {mb_per_sec:.1} MB/s, \
             {shard_bytes} bytes), identical: {identical}"
        );
        rows.push(format!(
            "    {{\"parts\": {parts}, \"work_seconds_total\": {work_total:.4}, \
             \"work_seconds_max\": {work_max:.4}, \"partition_overhead_pct\": {overhead_pct:.2}, \
             \"shard_bytes_total\": {shard_bytes}, \"merge_seconds\": {merge_seconds:.6}, \
             \"fold_shards_per_sec\": {shards_per_sec:.1}, \
             \"fold_mb_per_sec\": {mb_per_sec:.2}, \"bit_identical\": {identical}}}"
        ));
    }

    let available_parallelism = polaris_bench::host_parallelism();
    let json = format!(
        "{{\n  \"bench\": \"dist\",\n  \"design\": \"{}\",\n  \"scale\": {},\n  \
         \"gates\": {},\n  \"traces_per_class\": {},\n  \"seed\": {},\n  \"quick\": {},\n  \
         \"available_parallelism\": {},\n  \"peak_rss_kb\": {},\n  \"shards\": {},\n  \
         \"single_process_seconds\": {:.4},\n  \"partitionings\": [\n{}\n  ],\n  \
         \"bit_identical\": {}\n}}\n",
        args.design,
        args.scale,
        netlist.gate_count(),
        args.traces,
        args.seed,
        args.quick,
        available_parallelism,
        polaris_bench::json_u64(polaris_bench::peak_rss_kb()),
        n_shards,
        single_seconds,
        rows.join(",\n"),
        all_identical
    );
    polaris_bench::emit_bench_json("dist bench", &args.out, &json).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });

    if !all_identical {
        eprintln!("ERROR: a partitioning diverged — the distributed fold must be bit-identical");
        std::process::exit(1);
    }
}
