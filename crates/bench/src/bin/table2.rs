//! Table II — leakage reduction and runtime: VALIANT vs POLARIS at
//! 50 % / 75 % / 100 % of each design's leaky gates.
//!
//! Semantics follow the paper: "Leakage Value (Per Gate)" is the mean `|t|`
//! over cells, "Total Leakage Reduction (%)" is `1 − Σ|t|_after/Σ|t|_before`,
//! and "X% Mask" masks X% of the gates the baseline TVLA flags as leaky.
//! POLARIS's time is its TVLA-free mitigation path (structural ranking +
//! transform); VALIANT's time is its full TVLA-in-the-loop flow.

use std::time::Instant;

use polaris::masking_flow::{assess_grouped_fleet, rank_gates};
use polaris::report::{fmt_f, TextTable};
use polaris_bench::HarnessConfig;
use polaris_masking::{apply_masking, MaskingStyle};
use polaris_netlist::transform::decompose;
use polaris_sim::{CampaignConfig, PowerModel};
use polaris_valiant::{ValiantConfig, ValiantFlow};

fn main() {
    let cfg = HarnessConfig::from_args();
    let power = PowerModel::default();
    let trained = cfg.train_polaris(polaris::ModelKind::Adaboost);

    let mut table = TextTable::new(
        [
            "Benchmark",
            "Before",
            "VALIANT",
            "P-50%",
            "P-75%",
            "P-100%",
            "V Red%",
            "P50 Red%",
            "P75 Red%",
            "P100 Red%",
            "V Time(s)",
            "P Time(s)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut avg = [0.0f64; 11];
    let mut rows = 0usize;

    for design in cfg.evaluation_designs() {
        let name = design.name().to_string();
        eprintln!("[table2] {name}…");
        let (norm, _) = decompose(&design).expect("generated designs are valid");
        let cycles = if norm.is_combinational() { 1 } else { 3 };
        let campaign = CampaignConfig::new(cfg.traces, cfg.traces, cfg.seed).with_cycles(cycles);

        // Shared baseline (experiment context for both flows).
        let before_map = polaris_tvla::assess(&norm, &power, &campaign).expect("assessment runs");
        let before = before_map.summarize(&norm);
        let leaky = before.leaky_cells.max(1);

        // VALIANT: full iterative flow (timed end to end, includes its TVLA).
        let valiant = ValiantFlow::new(ValiantConfig {
            campaign: campaign.clone(),
            max_iterations: 3,
            style: MaskingStyle::Trichina,
            ..Default::default()
        })
        .run(&norm, &power)
        .expect("valiant flow runs");

        // POLARIS: structural ranking once (timed), then three mask sizes.
        let t0 = Instant::now();
        let ranked = rank_gates(
            &norm,
            trained.model(),
            Some(trained.rules()),
            trained.extractor(),
        )
        .expect("ranking runs");
        let rank_time = t0.elapsed().as_secs_f64();

        // Build the three mask-size variants first, then assess them as one
        // shared-pool fleet (their reporting campaigns interleave on the
        // same workers; per-variant results are byte-identical to solo
        // assess_grouped runs).
        let mut variants = Vec::new();
        let mut report_campaigns = Vec::new();
        let mut polaris_time = rank_time;
        for pct in [0.50, 0.75, 1.00] {
            let msize = (((leaky as f64) * pct).round() as usize).min(ranked.len());
            let t1 = Instant::now();
            let selected: Vec<_> = ranked.iter().take(msize).map(|(id, _)| *id).collect();
            let masked =
                apply_masking(&norm, &selected, MaskingStyle::Trichina).expect("masking runs");
            if (pct - 1.0).abs() < 1e-9 {
                polaris_time = rank_time + t1.elapsed().as_secs_f64();
            }
            let mut report_campaign = campaign.clone();
            report_campaign.seed = cfg.seed.wrapping_add((pct * 100.0) as u64);
            variants.push(masked);
            report_campaigns.push(report_campaign);
        }
        let results = assess_grouped_fleet(
            &norm,
            &variants,
            &power,
            &report_campaigns,
            cfg.parallelism(),
        )
        .expect("reporting assessments run");
        let mut per_gate = Vec::new();
        let mut reductions = Vec::new();
        for (after, _) in results {
            per_gate.push(after.mean_abs_t);
            reductions.push(after.reduction_pct_from(&before));
        }

        let cells = [
            name,
            fmt_f(before.mean_abs_t, 2),
            fmt_f(valiant.after.mean_abs_t, 2),
            fmt_f(per_gate[0], 2),
            fmt_f(per_gate[1], 2),
            fmt_f(per_gate[2], 2),
            fmt_f(valiant.reduction_pct(), 2),
            fmt_f(reductions[0], 2),
            fmt_f(reductions[1], 2),
            fmt_f(reductions[2], 2),
            fmt_f(valiant.runtime_s, 3),
            fmt_f(polaris_time, 3),
        ];
        let numbers = [
            before.mean_abs_t,
            valiant.after.mean_abs_t,
            per_gate[0],
            per_gate[1],
            per_gate[2],
            valiant.reduction_pct(),
            reductions[0],
            reductions[1],
            reductions[2],
            valiant.runtime_s,
            polaris_time,
        ];
        for (slot, v) in avg.iter_mut().zip(numbers) {
            *slot += v;
        }
        rows += 1;
        table.push_row(cells.to_vec());
    }

    if rows > 0 {
        let mut cells = vec!["Average".to_string()];
        for (i, v) in avg[..11].iter().enumerate() {
            cells.push(fmt_f(v / rows as f64, if i >= 9 { 3 } else { 2 }));
        }
        table.push_row(cells);
    }

    println!("\nTable II: VALIANT vs POLARIS — leakage reduction & runtime");
    println!(
        "(scale {}, {} traces/class; POLARIS time = TVLA-free mitigation path)\n",
        cfg.scale, cfg.traces
    );
    println!("{}", table.render());
    let speedup = avg[9] / avg[10].max(1e-9);
    println!("POLARIS speedup over VALIANT: {:.1}x", speedup);
}
