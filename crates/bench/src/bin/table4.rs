//! Table IV — area / power / delay overheads (× original): VALIANT's full
//! leaky-gate masking vs POLARIS at 50 % mask, plus POLARIS's overhead
//! reduction relative to VALIANT.

use polaris::masking_flow::rank_gates;
use polaris::report::{fmt_f, TextTable};
use polaris_bench::HarnessConfig;
use polaris_masking::{analyze_overhead, apply_masking, CellLibrary, MaskingStyle};
use polaris_netlist::transform::decompose;
use polaris_sim::{CampaignConfig, PowerModel};
use polaris_valiant::{ValiantConfig, ValiantFlow};

fn main() {
    let cfg = HarnessConfig::from_args();
    let power = PowerModel::default();
    let lib = CellLibrary::default();
    let trained = cfg.train_polaris(polaris::ModelKind::Adaboost);

    let mut table = TextTable::new(
        [
            "Designs",
            "Area(um2)",
            "Power(mW)",
            "Delay(ns)",
            "V-Area x",
            "V-Power x",
            "V-Delay x",
            "P-Area x",
            "P-Power x",
            "P-Delay x",
            "RedA%",
            "RedP%",
            "RedD%",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut sums = [0.0f64; 12];
    let mut rows = 0usize;

    for design in cfg.evaluation_designs() {
        let name = design.name().to_string();
        eprintln!("[table4] {name}…");
        let (norm, _) = decompose(&design).expect("generated designs are valid");
        let cycles = if norm.is_combinational() { 1 } else { 3 };
        let campaign = CampaignConfig::new(cfg.traces, cfg.traces, cfg.seed).with_cycles(cycles);

        let original = analyze_overhead(&norm, &lib, 64, cfg.seed).expect("overhead analysis");

        // VALIANT-masked design.
        let valiant = ValiantFlow::new(ValiantConfig {
            campaign: campaign.clone(),
            max_iterations: 3,
            ..Default::default()
        })
        .run(&norm, &power)
        .expect("valiant flow");
        let v_cost =
            analyze_overhead(&valiant.masked.netlist, &lib, 64, cfg.seed).expect("overhead");
        let v_ratio = v_cost.ratio_to(&original);

        // POLARIS at 50% of leaky gates (the paper's §-footnote: comparable
        // leakage reduction while masking half the gates).
        let before = polaris_tvla::assess(&norm, &power, &campaign)
            .expect("assessment")
            .summarize(&norm);
        let msize = ((before.leaky_cells as f64) * 0.5).round() as usize;
        let ranked = rank_gates(
            &norm,
            trained.model(),
            Some(trained.rules()),
            trained.extractor(),
        )
        .expect("ranking");
        let selected: Vec<_> = ranked
            .iter()
            .take(msize.max(1))
            .map(|(id, _)| *id)
            .collect();
        let masked = apply_masking(&norm, &selected, MaskingStyle::Trichina).expect("masking");
        let p_cost = analyze_overhead(&masked.netlist, &lib, 64, cfg.seed).expect("overhead");
        let p_ratio = p_cost.ratio_to(&original);

        let red = |v: f64, p: f64| if v > 0.0 { (1.0 - p / v) * 100.0 } else { 0.0 };
        let numbers = [
            original.area_um2,
            original.power_mw,
            original.delay_ns,
            v_ratio.area_um2,
            v_ratio.power_mw,
            v_ratio.delay_ns,
            p_ratio.area_um2,
            p_ratio.power_mw,
            p_ratio.delay_ns,
            red(v_ratio.area_um2, p_ratio.area_um2),
            red(v_ratio.power_mw, p_ratio.power_mw),
            red(v_ratio.delay_ns, p_ratio.delay_ns),
        ];
        for (s, v) in sums.iter_mut().zip(numbers) {
            *s += v;
        }
        rows += 1;
        let mut cells = vec![name];
        cells.push(fmt_f(numbers[0], 1));
        cells.push(fmt_f(numbers[1], 3));
        cells.push(fmt_f(numbers[2], 3));
        for v in &numbers[3..9] {
            cells.push(fmt_f(*v, 2));
        }
        for v in &numbers[9..] {
            cells.push(fmt_f(*v, 2));
        }
        table.push_row(cells);
    }

    if rows > 0 {
        let mut cells = vec!["Average".to_string()];
        cells.push(fmt_f(sums[0] / rows as f64, 1));
        cells.push(fmt_f(sums[1] / rows as f64, 3));
        cells.push(fmt_f(sums[2] / rows as f64, 3));
        for s in &sums[3..9] {
            cells.push(fmt_f(s / rows as f64, 2));
        }
        for s in &sums[9..] {
            cells.push(fmt_f(s / rows as f64, 2));
        }
        table.push_row(cells);
    }

    println!("\nTable IV: area/power/delay overheads — VALIANT vs POLARIS@50%");
    println!("(overheads reported as x-times the original design)\n");
    println!("{}", table.render());
}
