//! Third-order sweep throughput bench: the streaming trivariate co-moment
//! engine on an ISCAS-scale netlist, with peak-RSS tracking to demonstrate
//! the O(gate-triples) memory bound, and emits `BENCH_trivariate.json`.
//!
//! There is no dense trivariate cross-check engine (storing every trace for
//! a triple sweep is exactly the cost the streaming engine exists to avoid),
//! so the parity stage pins the engine against *itself* across execution
//! shapes that must not change bits: 1- vs 8-word SIMD lanes and a 2-part
//! distributed split folded back together. Any mismatch fails the bench.
//!
//! The payoff stage reruns the repo's higher-order demo: a second-order ISW
//! masked AND is clean at orders 1–2 on its output shares and fails only
//! the third-order test.
//!
//! ```text
//! cargo run --release -p polaris-bench --bin trivariate -- [flags]
//!
//! --quick          CI smoke profile (few traces, few triples)
//! --design NAME    ISCAS-like design to simulate          (default c880)
//! --traces N       traces per TVLA class, throughput arm  (default 100000)
//! --parity-traces N traces per class for the parity arm   (default 20000)
//! --gates K        sweep all triples of the first K cells; 0 = every cell
//!                  (default 12)
//! --seed N         campaign master seed                   (default 7)
//! --threads N      campaign worker threads, 0 = all cores (default 0)
//! --out PATH       output path                (default BENCH_trivariate.json)
//! ```

use std::time::Instant;

use polaris_bench::{json_u64, peak_rss_kb, rss_mb};
use polaris_dist::{execute_part_with, merge_parts};
use polaris_masking::isw::{masked_and_order2, IswMasks};
use polaris_netlist::{generators, Netlist};
use polaris_sim::{run_campaign_parallel_with, CampaignConfig, Parallelism, PowerModel};
use polaris_tvla::{
    all_pairs, all_triples, assess_pairs, assess_triples, TripleAccumulator, TVLA_THRESHOLD,
};

struct Args {
    quick: bool,
    design: String,
    traces: usize,
    parity_traces: usize,
    gates: usize,
    seed: u64,
    threads: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        design: "c880".to_string(),
        traces: 100_000,
        parity_traces: 20_000,
        gates: 12,
        seed: 7,
        threads: 0,
        out: "BENCH_trivariate.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut traces_set = false;
    let mut gates_set = false;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--quick" => {
                a.quick = true;
                i += 1;
            }
            "--design" => {
                a.design = need(i).to_string();
                i += 2;
            }
            "--traces" => {
                a.traces = need(i).parse().expect("--traces takes an integer");
                traces_set = true;
                i += 2;
            }
            "--parity-traces" => {
                a.parity_traces = need(i).parse().expect("--parity-traces takes an integer");
                i += 2;
            }
            "--gates" => {
                a.gates = need(i).parse().expect("--gates takes an integer");
                gates_set = true;
                i += 2;
            }
            "--seed" => {
                a.seed = need(i).parse().expect("--seed takes an integer");
                i += 2;
            }
            "--threads" => {
                a.threads = need(i).parse().expect("--threads takes an integer");
                i += 2;
            }
            "--out" => {
                a.out = need(i).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --quick  --design NAME  --traces N  --parity-traces N  \
                     --gates K  --seed N  --threads N  --out PATH"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    if a.quick {
        if !traces_set {
            a.traces = 2_000;
        }
        if !gates_set {
            a.gates = 8;
        }
    }
    a.parity_traces = a.parity_traces.min(a.traces);
    a
}

/// The (t, dof) bit patterns of a streaming triple campaign, in list order.
fn sweep_bits(
    netlist: &Netlist,
    model: &PowerModel,
    cfg: &CampaignConfig,
    par: Parallelism,
    triples: &[(u32, u32, u32)],
) -> Vec<(u64, u64)> {
    let acc: TripleAccumulator = run_campaign_parallel_with(netlist, model, cfg, par, || {
        TripleAccumulator::for_triples(triples.to_vec())
    })
    .expect("campaign runs");
    acc.results()
        .iter()
        .map(|(_, _, _, r)| (r.t.to_bits(), r.dof.to_bits()))
        .collect()
}

fn main() {
    let args = parse_args();
    let netlist = generators::iscas_like(&args.design, 1, args.seed).unwrap_or_else(|| {
        eprintln!("unknown ISCAS-like design `{}`", args.design);
        std::process::exit(2);
    });
    let model = PowerModel::default();
    let par = Parallelism::new(args.threads);

    let mut cells = netlist.cell_ids();
    if args.gates > 0 {
        cells.truncate(args.gates);
    }
    let triples = all_triples(&cells);

    eprintln!(
        "[trivariate bench] {}: {} gates, {} of them swept = {} triples, \
         {} traces/class streaming, {} traces/class parity, {} threads",
        args.design,
        netlist.gate_count(),
        cells.len(),
        triples.len(),
        args.traces,
        args.parity_traces,
        par.threads()
    );

    // Throughput arm: the full trace budget through the streaming engine.
    let cfg = CampaignConfig::new(args.traces, args.traces, args.seed);
    let t0 = Instant::now();
    let full: TripleAccumulator = run_campaign_parallel_with(&netlist, &model, &cfg, par, || {
        TripleAccumulator::for_triples(triples.clone())
    })
    .expect("campaign runs");
    let streaming_secs = t0.elapsed().as_secs_f64();
    let streaming_rss_kb = peak_rss_kb();
    let total_traces = (args.traces * 2) as f64;
    let updates_per_sec = triples.len() as f64 * total_traces / streaming_secs.max(1e-9);
    let leaky = full
        .results()
        .iter()
        .filter(|(_, _, _, r)| r.is_leaky(TVLA_THRESHOLD))
        .count();
    eprintln!(
        "  streaming {:>8} traces/class: {streaming_secs:.3}s  \
         ({updates_per_sec:.3e} triple-updates/sec, peak RSS {}, {leaky} leaky triples)",
        args.traces,
        rss_mb(streaming_rss_kb)
    );

    // Parity arm: the same capped campaign through three execution shapes —
    // 1- and 8-word lanes, and a 2-part distributed split folded back — all
    // of which must carry identical bits.
    let cap_cfg = CampaignConfig::new(args.parity_traces, args.parity_traces, args.seed);
    let reference = sweep_bits(
        &netlist,
        &model,
        &cap_cfg,
        Parallelism::new(args.threads).with_lane_words(1),
        &triples,
    );
    let wide = sweep_bits(
        &netlist,
        &model,
        &cap_cfg,
        Parallelism::new(args.threads).with_lane_words(8),
        &triples,
    );
    let parts: Vec<Vec<u8>> = (0..2)
        .map(|i| {
            execute_part_with(&netlist, &model, &cap_cfg, par, i, 2, || {
                TripleAccumulator::for_triples(triples.clone())
            })
            .expect("part executes")
        })
        .collect();
    let folded: Vec<(u64, u64)> =
        merge_parts::<TripleAccumulator>(parts.iter().map(Vec::as_slice), None)
            .expect("parts merge")
            .state
            .results()
            .iter()
            .map(|(_, _, _, r)| (r.t.to_bits(), r.dof.to_bits()))
            .collect();
    let identical = wide == reference && folded == reference;
    eprintln!(
        "  parity    {:>8} traces/class: lanes 1 vs 8 and 2-part dist fold \
         (bit_identical: {identical})",
        args.parity_traces
    );

    // Payoff arm: the 3-share ISW masked AND — clean through order 2 on its
    // output shares, detectable only at order 3.
    let mut isw = Netlist::new("isw_and");
    let in_a = isw.add_input("a");
    let in_b = isw.add_input("b");
    let masks = IswMasks::allocate(&mut isw, "g");
    let exp = masked_and_order2(&mut isw, "g", in_a, in_b, masks);
    isw.add_output("y", exp.output).expect("output binds");
    let share = |suffix: &str| {
        isw.iter()
            .find(|(_, g)| g.name() == format!("g_{suffix}"))
            .map(|(id, _)| id)
            .expect("share gate present")
    };
    let shares = [share("c0"), share("c1"), share("c2")];
    let isw_cfg = CampaignConfig::new(4_000, 4_000, args.seed).with_fixed_vector(vec![true, true]);
    let isw_model = PowerModel::default().with_noise(0.05);
    let t0 = Instant::now();
    let first = polaris_tvla::assess(&isw, &isw_model, &isw_cfg).expect("first-order campaign");
    let order1 = shares
        .iter()
        .map(|&g| first.abs_t(g))
        .fold(0.0f64, f64::max);
    let order2 = assess_pairs(&isw, &isw_model, &isw_cfg, par, &all_pairs(&shares))
        .expect("pair campaign")
        .iter()
        .map(|(_, _, r)| r.t.abs())
        .fold(0.0f64, f64::max);
    let order3 = assess_triples(&isw, &isw_model, &isw_cfg, par, &all_triples(&shares))
        .expect("triple campaign")[0]
        .3
        .t
        .abs();
    let payoff_secs = t0.elapsed().as_secs_f64();
    let detected = order1 < TVLA_THRESHOLD && order2 < TVLA_THRESHOLD && order3 > TVLA_THRESHOLD;
    eprintln!(
        "  payoff    ISW masked AND, 4000 traces/class: order-1 max |t| {order1:.2}, \
         order-2 max |t| {order2:.2}, order-3 |t| {order3:.2} ({payoff_secs:.3}s, \
         third_order_only: {detected})"
    );

    let json = format!(
        "{{\n  \"bench\": \"trivariate\",\n  \"design\": \"{}\",\n  \"gates\": {},\n  \
         \"swept_gates\": {},\n  \"triples\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \
         \"quick\": {},\n  \"host_cores\": {},\n  \
         \"streaming\": {{\n    \"traces_per_class\": {},\n    \"seconds\": {:.4},\n    \
         \"triple_updates_per_sec\": {:.1},\n    \"peak_rss_kb\": {},\n    \"leaky_triples\": {}\n  }},\n  \
         \"parity\": {{\n    \"traces_per_class\": {},\n    \"lane_words\": [1, 8],\n    \
         \"dist_parts\": 2\n  }},\n  \
         \"isw_payoff\": {{\n    \"traces_per_class\": 4000,\n    \"seconds\": {:.4},\n    \
         \"order1_max_abs_t\": {:.3},\n    \"order2_max_abs_t\": {:.3},\n    \
         \"order3_abs_t\": {:.3},\n    \"third_order_only\": {}\n  }},\n  \
         \"bit_identical\": {}\n}}\n",
        args.design,
        netlist.gate_count(),
        cells.len(),
        triples.len(),
        args.seed,
        par.threads(),
        args.quick,
        polaris_bench::host_parallelism(),
        args.traces,
        streaming_secs,
        updates_per_sec,
        json_u64(streaming_rss_kb),
        leaky,
        args.parity_traces,
        payoff_secs,
        order1,
        order2,
        order3,
        detected,
        identical
    );
    polaris_bench::emit_bench_json("trivariate bench", &args.out, &json).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });

    if !identical {
        eprintln!(
            "ERROR: lane-width or distributed-fold t statistics disagreed — the \
             engine must be bit-identical across execution shapes"
        );
        std::process::exit(1);
    }
    if !detected {
        eprintln!(
            "ERROR: the ISW masked AND must be clean at orders 1-2 and leaky at \
             order 3 — higher-order detection regressed"
        );
        std::process::exit(1);
    }
}
