//! Fig. 3 — SHAP waterfall plots from the POLARIS AdaBoost model: one
//! confidently-"mask" sample and one confidently-"don't mask" sample.

use polaris_bench::HarnessConfig;
use polaris_ml::Classifier;

fn main() {
    let cfg = HarnessConfig::from_args();
    let trained = cfg.train_polaris(polaris::ModelKind::Adaboost);
    let data = trained.dataset();
    let model = trained.model();

    // Pick the most confident sample of each class.
    let mut best_pos: Option<(usize, f64)> = None;
    let mut best_neg: Option<(usize, f64)> = None;
    for i in 0..data.len() {
        let p = model.predict_proba(data.row(i));
        if best_pos.is_none_or(|(_, bp)| p > bp) {
            best_pos = Some((i, p));
        }
        if best_neg.is_none_or(|(_, bp)| p < bp) {
            best_neg = Some((i, p));
        }
    }

    println!("\nFig. 3: SHAP waterfall plots (AdaBoost model, margin space)\n");
    if let Some((i, p)) = best_pos {
        println!("(a) sample predicted GOOD mask (P = {p:.3}):\n");
        let w = trained.explainer().waterfall(model, data.row(i));
        println!("{}", w.render(9, 28));
    }
    if let Some((i, p)) = best_neg {
        println!("(b) sample predicted BAD mask (P = {p:.3}):\n");
        let w = trained.explainer().waterfall(model, data.row(i));
        println!("{}", w.render(9, 28));
    }

    // Companion summary: global mean |SHAP| per structural feature.
    println!("global feature importance (mean |phi| over the cognition set):\n");
    let imp = trained.explainer().global_importance(model, data, 200);
    let max = imp.first().map_or(1.0, |(_, v)| *v).max(1e-12);
    for (name, value) in imp.iter().take(10) {
        let bar = "█".repeat(((value / max) * 30.0).round() as usize);
        println!("  {value:>8.4}  {bar:<30}  {name}");
    }
}
