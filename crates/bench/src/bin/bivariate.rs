//! Second-order sweep throughput bench: streaming co-moment engine vs the
//! dense two-pass path on an ISCAS-scale netlist, with peak-RSS tracking to
//! demonstrate the O(gate-pairs) memory bound, and emits
//! `BENCH_bivariate.json`.
//!
//! The streaming arm runs at the full trace budget in O(pairs) memory; the
//! dense arm materializes every per-gate trace sample, so it runs at a
//! capped trace count (`--dense-traces`) where its O(traces × gates) buffers
//! still fit. At the shared cap the two engines' t statistics are compared
//! bit-for-bit — any mismatch fails the bench.
//!
//! ```text
//! cargo run --release -p polaris-bench --bin bivariate -- [flags]
//!
//! --quick          CI smoke profile (few traces, few pairs)
//! --design NAME    ISCAS-like design to simulate          (default c880)
//! --traces N       traces per TVLA class, streaming arm   (default 1000000)
//! --dense-traces N traces per class for the dense arm cap (default 20000)
//! --gates K        sweep all pairs of the first K cells; 0 = every cell
//!                  (default 32)
//! --seed N         campaign master seed                   (default 7)
//! --threads N      campaign worker threads, 0 = all cores (default 0)
//! --out PATH       output path                 (default BENCH_bivariate.json)
//! ```

use std::time::Instant;

use polaris_bench::{json_u64, peak_rss_kb, rss_mb};
use polaris_netlist::generators;
use polaris_sim::campaign::collect_gate_samples_parallel;
use polaris_sim::{run_campaign_parallel_with, CampaignConfig, Parallelism, PowerModel};
use polaris_tvla::{all_pairs, bivariate_t, PairAccumulator};

struct Args {
    quick: bool,
    design: String,
    traces: usize,
    dense_traces: usize,
    gates: usize,
    seed: u64,
    threads: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        design: "c880".to_string(),
        traces: 1_000_000,
        dense_traces: 20_000,
        gates: 32,
        seed: 7,
        threads: 0,
        out: "BENCH_bivariate.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut traces_set = false;
    let mut gates_set = false;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--quick" => {
                a.quick = true;
                i += 1;
            }
            "--design" => {
                a.design = need(i).to_string();
                i += 2;
            }
            "--traces" => {
                a.traces = need(i).parse().expect("--traces takes an integer");
                traces_set = true;
                i += 2;
            }
            "--dense-traces" => {
                a.dense_traces = need(i).parse().expect("--dense-traces takes an integer");
                i += 2;
            }
            "--gates" => {
                a.gates = need(i).parse().expect("--gates takes an integer");
                gates_set = true;
                i += 2;
            }
            "--seed" => {
                a.seed = need(i).parse().expect("--seed takes an integer");
                i += 2;
            }
            "--threads" => {
                a.threads = need(i).parse().expect("--threads takes an integer");
                i += 2;
            }
            "--out" => {
                a.out = need(i).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --quick  --design NAME  --traces N  --dense-traces N  \
                     --gates K  --seed N  --threads N  --out PATH"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    if a.quick {
        if !traces_set {
            a.traces = 4_000;
        }
        if !gates_set {
            a.gates = 12;
        }
        a.dense_traces = a.dense_traces.min(a.traces);
    }
    a
}

fn main() {
    let args = parse_args();
    let netlist = generators::iscas_like(&args.design, 1, args.seed).unwrap_or_else(|| {
        eprintln!("unknown ISCAS-like design `{}`", args.design);
        std::process::exit(2);
    });
    let model = PowerModel::default();
    let par = Parallelism::new(args.threads);

    let mut cells = netlist.cell_ids();
    if args.gates > 0 {
        cells.truncate(args.gates);
    }
    let pairs = all_pairs(&cells);
    let dense_traces = args.dense_traces.min(args.traces);

    eprintln!(
        "[bivariate bench] {}: {} gates, {} of them swept = {} pairs, \
         {} traces/class streaming, {} traces/class dense, {} threads",
        args.design,
        netlist.gate_count(),
        cells.len(),
        pairs.len(),
        args.traces,
        dense_traces,
        par.threads()
    );

    let factory = || PairAccumulator::for_pairs(pairs.clone());

    // Streaming arm first: VmHWM is a process-wide high-water mark, so the
    // O(pairs) arm must set its reading before the O(traces) arm raises it.
    let cfg = CampaignConfig::new(args.traces, args.traces, args.seed);
    let t0 = Instant::now();
    let full: PairAccumulator =
        run_campaign_parallel_with(&netlist, &model, &cfg, par, factory).expect("campaign runs");
    let streaming_secs = t0.elapsed().as_secs_f64();
    let streaming_rss_kb = peak_rss_kb();
    let total_traces = (args.traces * 2) as f64;
    let updates_per_sec = pairs.len() as f64 * total_traces / streaming_secs.max(1e-9);
    let leaky = full
        .results()
        .iter()
        .filter(|(_, _, r)| r.is_leaky(polaris_tvla::TVLA_THRESHOLD))
        .count();
    eprintln!(
        "  streaming {:>8} traces/class: {streaming_secs:.3}s  \
         ({updates_per_sec:.3e} pair-updates/sec, peak RSS {}, {leaky} leaky pairs)",
        args.traces,
        rss_mb(streaming_rss_kb)
    );

    // Parity stage at the dense cap: streaming re-run, then the dense
    // two-pass engine over materialized samples — bits must agree.
    let cap_cfg = CampaignConfig::new(dense_traces, dense_traces, args.seed);
    let t0 = Instant::now();
    let capped: PairAccumulator =
        run_campaign_parallel_with(&netlist, &model, &cap_cfg, par, factory)
            .expect("campaign runs");
    let streaming_cap_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let samples = collect_gate_samples_parallel(&netlist, &model, &cap_cfg, par).expect("campaign");
    let dense: Vec<_> = pairs
        .iter()
        .map(|&(x, y)| {
            bivariate_t(
                &samples,
                polaris_netlist::GateId::new(x as usize),
                polaris_netlist::GateId::new(y as usize),
            )
            .expect("pairs in range")
        })
        .collect();
    let dense_secs = t0.elapsed().as_secs_f64();
    let dense_rss_kb = peak_rss_kb();
    drop(samples);

    let identical =
        capped.results().iter().zip(&dense).all(|((_, _, s), d)| {
            s.t.to_bits() == d.t.to_bits() && s.dof.to_bits() == d.dof.to_bits()
        });
    eprintln!(
        "  dense     {dense_traces:>8} traces/class: {dense_secs:.3}s \
         (vs {streaming_cap_secs:.3}s streaming, peak RSS {}, bit_identical: {identical})",
        rss_mb(dense_rss_kb)
    );

    let json = format!(
        "{{\n  \"bench\": \"bivariate\",\n  \"design\": \"{}\",\n  \"gates\": {},\n  \
         \"swept_gates\": {},\n  \"pairs\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \
         \"quick\": {},\n  \"host_cores\": {},\n  \
         \"streaming\": {{\n    \"traces_per_class\": {},\n    \"seconds\": {:.4},\n    \
         \"pair_updates_per_sec\": {:.1},\n    \"peak_rss_kb\": {},\n    \"leaky_pairs\": {}\n  }},\n  \
         \"dense\": {{\n    \"traces_per_class\": {},\n    \"seconds\": {:.4},\n    \
         \"streaming_seconds_at_cap\": {:.4},\n    \"peak_rss_kb\": {}\n  }},\n  \
         \"bit_identical\": {}\n}}\n",
        args.design,
        netlist.gate_count(),
        cells.len(),
        pairs.len(),
        args.seed,
        par.threads(),
        args.quick,
        polaris_bench::host_parallelism(),
        args.traces,
        streaming_secs,
        updates_per_sec,
        json_u64(streaming_rss_kb),
        leaky,
        dense_traces,
        dense_secs,
        streaming_cap_secs,
        json_u64(dense_rss_kb),
        identical
    );
    polaris_bench::emit_bench_json("bivariate bench", &args.out, &json).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });

    if !identical {
        eprintln!(
            "ERROR: streaming and dense t statistics disagreed — the engines must be bit-identical"
        );
        std::process::exit(1);
    }
}
