//! Table V — power side-channel mitigation rules generated via the POLARIS
//! framework (AdaBoost model), mined from SHAP explanations.

use polaris_bench::HarnessConfig;
use polaris_xai::RuleMiner;

fn main() {
    let cfg = HarnessConfig::from_args();
    let trained = cfg.train_polaris(polaris::ModelKind::Adaboost);

    // The rule set mined at training time with default parameters.
    println!("\nTable V: mitigation rules extracted by POLARIS (AdaBoost model)\n");
    if trained.rules().is_empty() {
        println!("(default miner found no rules at this scale; relaxing support)");
    }
    for (i, rule) in trained.rules().rules().iter().enumerate() {
        println!("Rule {}: {}", (b'A' + i as u8) as char, rule.render());
    }

    // A relaxed pass to surface more of the model's structure.
    let relaxed = trained.explainer().mine_rules(
        trained.model(),
        trained.dataset(),
        &RuleMiner {
            conditions_per_rule: 2,
            min_probability: 0.6,
            min_support: 2,
            max_rules: 6,
        },
    );
    println!("\nRelaxed mining (2-condition rules, support >= 2):\n");
    for (i, rule) in relaxed.rules().iter().enumerate() {
        println!("Rule {}: {}", (b'A' + i as u8) as char, rule.render());
    }
}
