//! Table III — leakage reduction by model family (Random Forest + SMOTE vs
//! XGBoost vs AdaBoost, weighted training, α = 0.01), full leaky-gate mask.

use polaris::masking_flow::{assess_grouped, rank_gates};
use polaris::report::{fmt_f, TextTable};
use polaris::{ModelKind, PolarisModel};
use polaris_bench::HarnessConfig;
use polaris_masking::{apply_masking, MaskingStyle};
use polaris_netlist::transform::decompose;
use polaris_sim::{CampaignConfig, PowerModel};

fn main() {
    let cfg = HarnessConfig::from_args();
    let power = PowerModel::default();

    // One cognition corpus (generated once), three model families trained
    // on it — the paper's Table III setting.
    let base = cfg.train_polaris(ModelKind::Adaboost);
    let models: Vec<_> = ModelKind::ALL
        .iter()
        .map(|&kind| {
            let model = if kind == ModelKind::Adaboost {
                base.model().clone()
            } else {
                let pc = cfg.polaris_config(kind);
                PolarisModel::train(base.dataset(), &pc).unwrap_or_else(|e| {
                    eprintln!("training {} failed: {e}", kind.name());
                    std::process::exit(1);
                })
            };
            (kind, model)
        })
        .collect();

    let mut table = TextTable::new(
        ["Designs", "Random Forest", "XGBoost", "AdaBoost"]
            .map(String::from)
            .to_vec(),
    );
    let mut avg = [0.0f64; 3];
    let mut rows = 0usize;

    for design in cfg.evaluation_designs() {
        let name = design.name().to_string();
        eprintln!("[table3] {name}…");
        let (norm, _) = decompose(&design).expect("generated designs are valid");
        let cycles = if norm.is_combinational() { 1 } else { 3 };
        let campaign = CampaignConfig::new(cfg.traces, cfg.traces, cfg.seed).with_cycles(cycles);
        let before_map = polaris_tvla::assess(&norm, &power, &campaign).expect("assessment");
        let before = before_map.summarize(&norm);
        let msize = before.leaky_cells.max(1);

        let mut cells = vec![name];
        for (i, (_, model)) in models.iter().enumerate() {
            let ranked =
                rank_gates(&norm, model, Some(base.rules()), base.extractor()).expect("ranking");
            let selected: Vec<_> = ranked.iter().take(msize).map(|(id, _)| *id).collect();
            let masked = apply_masking(&norm, &selected, MaskingStyle::Trichina).expect("masking");
            let mut rc = campaign.clone();
            rc.seed = cfg.seed.wrapping_add(1000 + i as u64);
            let (after, _) = assess_grouped(&norm, &masked, &power, &rc, cfg.parallelism())
                .expect("reporting assessment");
            let red = after.reduction_pct_from(&before);
            avg[i] += red;
            cells.push(fmt_f(red, 2));
        }
        rows += 1;
        table.push_row(cells);
    }

    if rows > 0 {
        let mut cells = vec!["Average".to_string()];
        for a in avg {
            cells.push(fmt_f(a / rows as f64, 2));
        }
        table.push_row(cells);
    }

    println!("\nTable III: leakage reduction (%) by POLARIS model family");
    println!(
        "(full leaky-gate mask; L = 7, theta_r = 0.7, lr = 0.01; scale {}, {} traces)\n",
        cfg.scale, cfg.traces
    );
    println!("{}", table.render());
}
