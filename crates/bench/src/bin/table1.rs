//! Table I — qualitative comparison of POLARIS with prior
//! evaluation/mitigation flows. Static content from the paper, printed in
//! the repo's table format so every table has a regenerating binary.

use polaris::report::TextTable;

fn main() {
    let mut t = TextTable::new(
        [
            "Approach",
            "Method",
            "Model Training",
            "Feature Set",
            "Mitigation",
            "Performance",
            "Platform",
        ]
        .map(String::from)
        .to_vec(),
    );
    let rows: [[&str; 7]; 6] = [
        ["CASCADE", "TVLA", "N/A", "N/A", "No", "Slow", "ASIC"],
        ["Karna", "TVLA", "N/A", "N/A", "Limited", "Slow", "ASIC"],
        ["VALIANT", "TVLA", "N/A", "N/A", "Yes", "Slow", "ASIC"],
        [
            "DL-LA",
            "DL",
            "high time; adversarial-attack prone; no XAI; no synthetic data",
            "Trace based",
            "No",
            "Slow",
            "ASIC/FPGA",
        ],
        [
            "Netlist Whisperer",
            "LLM",
            "high time; adversarial-attack prone; no XAI; no synthetic data",
            "ANF equations",
            "Yes",
            "Slow",
            "ASIC",
        ],
        [
            "POLARIS (this work)",
            "XAI",
            "low time; adversarially robust; explainable; synthetic data",
            "Structural",
            "Yes",
            "Fast",
            "ASIC/FPGA*",
        ],
    ];
    for r in rows {
        t.push_row(r.map(String::from).to_vec());
    }
    println!("Table I: POLARIS vs existing power side-channel solutions\n");
    println!("{}", t.render());
    println!("* extendable to FPGA flows by retraining on LUT-based netlists.");
}
