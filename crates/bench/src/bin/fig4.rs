//! Fig. 4 — per-gate TVLA t-values on `des3` before and after POLARIS
//! masking, with the ±4.5 leakage threshold. Rendered as an ASCII scatter
//! over gate index plus summary counts.

use polaris::pipeline::MaskBudget;
use polaris_bench::HarnessConfig;
use polaris_netlist::generators;
use polaris_sim::PowerModel;

fn main() {
    let cfg = HarnessConfig::from_args();
    let power = PowerModel::default();
    let trained = cfg.train_polaris(polaris::ModelKind::Adaboost);

    let design = generators::des3(cfg.scale, cfg.seed);
    eprintln!("[fig4] masking des3 (full leaky set)…");
    let report = trained
        .mask_design(&design, &power, MaskBudget::LeakyFraction(1.0))
        .expect("pipeline runs");

    let before: Vec<f64> = report.before_map.abs_t_all();
    let after = &report.after_grouped_abs_t;
    let threshold = polaris_tvla::TVLA_THRESHOLD;

    // Scatter: rows = |t| bands (top high), columns = gate-index buckets.
    let gates = before.len();
    let buckets = 96usize.min(gates);
    let bucket_of = |g: usize| g * buckets / gates;
    let max_t = before
        .iter()
        .chain(after.iter())
        .fold(threshold * 1.5, |m, &v| m.max(v));
    let bands = 16usize;
    let band_of = |t: f64| {
        let b = ((t / max_t) * bands as f64).floor() as usize;
        b.min(bands - 1)
    };
    let mut grid = vec![vec![' '; buckets]; bands];
    for (g, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
        let col = bucket_of(g);
        let row_b = bands - 1 - band_of(b);
        let row_a = bands - 1 - band_of(a);
        // 'o' = before, '+' = after, '#' = overlap.
        grid[row_b][col] = if grid[row_b][col] == '+' { '#' } else { 'o' };
        grid[row_a][col] = match grid[row_a][col] {
            'o' | '#' => '#',
            _ => '+',
        };
    }

    println!("\nFig. 4: TVLA |t| per gate on des3 — before (o) vs after (+) POLARIS masking\n");
    let threshold_band = bands - 1 - band_of(threshold);
    for (r, row) in grid.iter().enumerate() {
        let label = max_t * (bands - r) as f64 / bands as f64;
        let line: String = row.iter().collect();
        let marker = if r == threshold_band {
            " <-- |t| = 4.5"
        } else {
            ""
        };
        println!("{label:6.1} |{line}|{marker}");
    }
    println!("       +{}+", "-".repeat(buckets));
    println!("        gate index (bucketed over {gates} gates)\n");

    let leaky_before = before.iter().filter(|&&t| t > threshold).count();
    let leaky_after = after.iter().filter(|&&t| t > threshold).count();
    println!("gates above |t| = 4.5:  before = {leaky_before}   after = {leaky_after}");
    println!(
        "mean |t| per cell:      before = {:.2}   after = {:.2}   (reduction {:.1}%)",
        report.before.mean_abs_t,
        report.after.mean_abs_t,
        report.reduction_pct()
    );
}
