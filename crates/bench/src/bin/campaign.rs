//! Campaign-engine throughput bench: measures trace-acquisition +
//! leakage-assessment throughput (traces/sec) of the sharded parallel
//! engine at several thread counts on an ISCAS-scale netlist, verifies the
//! runs are bit-identical, and emits `BENCH_campaign.json`.
//!
//! ```text
//! cargo run --release -p polaris-bench --bin campaign -- [flags]
//!
//! --quick        CI smoke profile (small design, few traces)
//! --design NAME  ISCAS-like design to simulate        (default c1908)
//! --scale N      generator scale factor               (default 1)
//! --traces N     traces per TVLA class                (default 20000)
//! --seed N       campaign master seed                 (default 7)
//! --lane-words W simulator words per gate visit, 1/2/4/8 (default 4)
//! --adaptive     also run the sequential-stopping engine and fail if its
//!                leak verdict diverges from the full run's
//! --confidence P adaptive clean-verdict confidence    (default 0.95)
//! --out PATH     output path                          (default BENCH_campaign.json)
//! --tmap PATH    also write the per-gate t-map as an exact-bits CSV —
//!                `cmp` two of these from different lane widths / thread
//!                counts to machine-check the bit-identity guarantee
//! ```

use std::time::Instant;

use polaris_netlist::generators;
use polaris_sim::{CampaignConfig, Parallelism, PowerModel};
use polaris_tvla::{assess_adaptive, assess_parallel, SequentialConfig, TVLA_THRESHOLD};

struct Args {
    quick: bool,
    design: String,
    scale: u32,
    traces: usize,
    seed: u64,
    lane_words: usize,
    adaptive: bool,
    confidence: f64,
    out: String,
    tmap: Option<String>,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        design: "c1908".to_string(),
        scale: 1,
        traces: 20_000,
        seed: 7,
        lane_words: polaris_sim::DEFAULT_LANE_WORDS,
        adaptive: false,
        confidence: 0.95,
        out: "BENCH_campaign.json".to_string(),
        tmap: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut traces_set = false;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--quick" => {
                a.quick = true;
                i += 1;
            }
            "--design" => {
                a.design = need(i).to_string();
                i += 2;
            }
            "--scale" => {
                a.scale = need(i).parse().expect("--scale takes an integer");
                i += 2;
            }
            "--traces" => {
                a.traces = need(i).parse().expect("--traces takes an integer");
                traces_set = true;
                i += 2;
            }
            "--seed" => {
                a.seed = need(i).parse().expect("--seed takes an integer");
                i += 2;
            }
            "--lane-words" => {
                a.lane_words = need(i).parse().expect("--lane-words takes an integer");
                assert!(
                    matches!(a.lane_words, 1 | 2 | 4 | 8),
                    "--lane-words must be 1, 2, 4 or 8, got {}",
                    a.lane_words
                );
                i += 2;
            }
            "--adaptive" => {
                a.adaptive = true;
                i += 1;
            }
            "--confidence" => {
                a.confidence = need(i).parse().expect("--confidence takes a float");
                assert!(
                    a.confidence > 0.0 && a.confidence < 1.0,
                    "--confidence must lie in (0, 1), got {}",
                    a.confidence
                );
                i += 2;
            }
            "--out" => {
                a.out = need(i).to_string();
                i += 2;
            }
            "--tmap" => {
                a.tmap = Some(need(i).to_string());
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --quick  --design NAME  --scale N  --traces N  --seed N  \
                     --lane-words W  --adaptive  --confidence P  --out PATH  --tmap PATH"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    if a.quick && !traces_set {
        a.traces = 2_000;
    }
    a
}

fn fmt_runs(runs: &[(usize, f64, f64)]) -> String {
    runs.iter()
        .map(|(threads, seconds, tps)| {
            format!(
                "    {{\"threads\": {threads}, \"seconds\": {seconds:.4}, \
                 \"traces_per_sec\": {tps:.1}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let args = parse_args();
    let netlist =
        generators::iscas_like(&args.design, args.scale, args.seed).unwrap_or_else(|| {
            eprintln!("unknown ISCAS-like design `{}`", args.design);
            std::process::exit(2);
        });
    let model = PowerModel::default();
    let cfg = CampaignConfig::new(args.traces, args.traces, args.seed);
    let total_traces = (args.traces * 2) as f64;

    let cores = Parallelism::auto().threads();
    let mut thread_counts = vec![1usize, 2, 4];
    if cores > 4 {
        thread_counts.push(cores);
    }
    thread_counts.retain(|&t| t <= cores.max(4));
    thread_counts.dedup();

    eprintln!(
        "[campaign bench] {} (scale {}): {} gates, {} traces/class, {} lane words, threads {:?}",
        args.design,
        args.scale,
        netlist.gate_count(),
        args.traces,
        args.lane_words,
        thread_counts
    );

    // (threads, seconds, traces/sec) per run, plus bit-identity tracking.
    let mut runs: Vec<(usize, f64, f64)> = Vec::new();
    let mut reference_bits: Option<Vec<u64>> = None;
    let mut reference_leakage: Option<polaris_tvla::GateLeakage> = None;
    let mut identical = true;
    for &threads in &thread_counts {
        let t0 = Instant::now();
        let par = Parallelism::new(threads).with_lane_words(args.lane_words);
        let leakage = assess_parallel(&netlist, &model, &cfg, par).expect("campaign runs");
        let seconds = t0.elapsed().as_secs_f64();
        let tps = total_traces / seconds.max(1e-9);
        let bits: Vec<u64> = netlist
            .ids()
            .map(|id| leakage.result(id).t.to_bits())
            .collect();
        match &reference_bits {
            None => {
                reference_bits = Some(bits);
                reference_leakage = Some(leakage);
            }
            Some(r) => identical &= *r == bits,
        }
        eprintln!("  {threads:>2} threads: {seconds:.3}s  ({tps:.0} traces/sec)");
        runs.push((threads, seconds, tps));
    }

    // Adaptive mode: run the sequential-stopping engine against the same
    // budget and cross-check its leak verdict against the full run's.
    let mut adaptive_json = String::new();
    let mut verdict_diverged = false;
    let mut adaptive_ran_full = false;
    if args.adaptive {
        let seq = SequentialConfig::with_confidence(args.confidence);
        let t0 = Instant::now();
        let par = Parallelism::auto().with_lane_words(args.lane_words);
        let a = assess_adaptive(&netlist, &model, &cfg, par, &seq).expect("adaptive campaign runs");
        let seconds = t0.elapsed().as_secs_f64();
        let full = reference_leakage
            .as_ref()
            .expect("at least one full run preceded");
        let divergent = netlist
            .ids()
            .filter(|&id| {
                (a.leakage.abs_t(id) > TVLA_THRESHOLD) != (full.abs_t(id) > TVLA_THRESHOLD)
            })
            .count();
        verdict_diverged = divergent > 0;
        adaptive_ran_full = !a.stats.stopped_early;
        let leaky = a.leakage.summarize(&netlist).leaky_cells;
        eprintln!(
            "  adaptive: {seconds:.3}s, {} of {} traces ({:.1}% saved), \
             {} of {} rounds, {} leaky cells, {divergent} verdict divergences",
            a.stats.traces_used(),
            args.traces * 2,
            a.savings_fraction() * 100.0,
            a.stats.rounds,
            a.stats.planned_rounds,
            leaky
        );
        adaptive_json = format!(
            ",\n  \"adaptive\": {{\n    \"confidence\": {},\n    \
             \"traces_budget\": {},\n    \"traces_used\": {},\n    \
             \"fixed_traces\": {},\n    \"random_traces\": {},\n    \
             \"rounds\": {},\n    \"planned_rounds\": {},\n    \
             \"stopped_early\": {},\n    \"savings_pct\": {:.2},\n    \
             \"leaky_cells\": {},\n    \"verdict_matches_full\": {}\n  }}",
            args.confidence,
            args.traces * 2,
            a.stats.traces_used(),
            a.stats.fixed_traces,
            a.stats.random_traces,
            a.stats.rounds,
            a.stats.planned_rounds,
            a.stats.stopped_early,
            a.savings_fraction() * 100.0,
            leaky,
            !verdict_diverged
        );
    }

    // Exact-bits t-map: one line per gate, t-statistic as raw IEEE-754 bits.
    // Two of these files from runs that the engine guarantees bit-identical
    // (any lane width, any thread count) must compare equal with `cmp`.
    if let Some(path) = &args.tmap {
        let leakage = reference_leakage
            .as_ref()
            .expect("at least one full run preceded");
        let mut csv = String::from("gate,t_bits\n");
        for id in netlist.ids() {
            use std::fmt::Write as _;
            let _ = writeln!(
                csv,
                "{},{:016x}",
                id.index(),
                leakage.result(id).t.to_bits()
            );
        }
        std::fs::write(path, csv).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("  t-map written to {path}");
    }

    let tps_1 = runs
        .iter()
        .find(|(t, _, _)| *t == 1)
        .map(|(_, _, tps)| *tps)
        .unwrap_or(f64::NAN);
    let tps_4 = runs
        .iter()
        .find(|(t, _, _)| *t == 4)
        .map(|(_, _, tps)| *tps)
        .unwrap_or(f64::NAN);
    let speedup_4t = tps_4 / tps_1;

    // `host_cores` / `available_parallelism` contextualize the speedup: on
    // a 1-core host every thread count degenerates to the same wall-clock,
    // so a committed artifact with speedup ≈ 1.0 is self-explaining.
    let available_parallelism = polaris_bench::host_parallelism();
    let json = format!(
        "{{\n  \"bench\": \"campaign\",\n  \"design\": \"{}\",\n  \"scale\": {},\n  \
         \"gates\": {},\n  \"traces_per_class\": {},\n  \"seed\": {},\n  \"lane_words\": {},\n  \
         \"quick\": {},\n  \
         \"host_cores\": {},\n  \"available_parallelism\": {},\n  \"peak_rss_kb\": {},\n  \
         \"runs\": [\n{}\n  ],\n  \"speedup_4t\": {:.3},\n  \"bit_identical\": {}{}\n}}\n",
        args.design,
        args.scale,
        netlist.gate_count(),
        args.traces,
        args.seed,
        args.lane_words,
        args.quick,
        cores,
        available_parallelism,
        polaris_bench::json_u64(polaris_bench::peak_rss_kb()),
        fmt_runs(&runs),
        speedup_4t,
        identical,
        adaptive_json
    );
    polaris_bench::emit_bench_json("campaign bench", &args.out, &json).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });

    if !identical {
        eprintln!("ERROR: thread counts disagreed — the engine must be bit-identical");
        std::process::exit(1);
    }
    if verdict_diverged {
        eprintln!("ERROR: the adaptive run's leak verdict diverged from the full run's t-map");
        std::process::exit(1);
    }
    if args.adaptive && args.quick && adaptive_ran_full {
        eprintln!(
            "ERROR: adaptive smoke run consumed the whole budget — expected an early stop \
             on the leaky smoke design"
        );
        std::process::exit(1);
    }
    if !args.quick && speedup_4t.is_finite() && speedup_4t < 2.0 && cores >= 4 {
        eprintln!("WARNING: 4-thread speedup {speedup_4t:.2}x below the 2x target");
    }
}
