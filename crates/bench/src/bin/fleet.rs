//! Fleet-scheduler throughput bench: measures suite trace throughput when a
//! set of designs is assessed campaign-by-campaign (the pre-fleet serial
//! path, each campaign parallelized internally) versus as one shared-pool
//! fleet at several thread counts, verifies every fleet job stays
//! bit-identical to its standalone run, and emits `BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p polaris-bench --bin fleet -- [flags]
//!
//! --quick        CI smoke profile (small designs, few traces)
//! --designs a,b  ISCAS-like designs of the suite   (default c432,c499,c880)
//! --scale N      generator scale factor            (default 1)
//! --traces N     traces per TVLA class per design  (default 12000)
//! --seed N       campaign master seed              (default 7)
//! --out PATH     output path                       (default BENCH_fleet.json)
//! ```

use std::time::Instant;

use polaris_netlist::{generators, Netlist};
use polaris_sim::{
    run_campaign_parallel, run_fleet, CampaignConfig, FleetJob, Parallelism, PowerModel,
};
use polaris_tvla::WelchAccumulator;

struct Args {
    quick: bool,
    designs: Vec<String>,
    scale: u32,
    traces: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        designs: Vec::new(),
        scale: 1,
        traces: 12_000,
        seed: 7,
        out: "BENCH_fleet.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut traces_set = false;
    let mut designs_set = false;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--quick" => {
                a.quick = true;
                i += 1;
            }
            "--designs" => {
                a.designs = need(i).split(',').map(|s| s.trim().to_string()).collect();
                designs_set = true;
                i += 2;
            }
            "--scale" => {
                a.scale = need(i).parse().expect("--scale takes an integer");
                i += 2;
            }
            "--traces" => {
                a.traces = need(i).parse().expect("--traces takes an integer");
                traces_set = true;
                i += 2;
            }
            "--seed" => {
                a.seed = need(i).parse().expect("--seed takes an integer");
                i += 2;
            }
            "--out" => {
                a.out = need(i).to_string();
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --quick  --designs a,b,c  --scale N  --traces N  --seed N  --out PATH"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    if a.quick && !traces_set {
        a.traces = 1_500;
    }
    if !designs_set {
        a.designs = if a.quick {
            vec!["c17".into(), "c432".into(), "c499".into()]
        } else {
            vec!["c432".into(), "c499".into(), "c880".into()]
        };
    }
    a
}

fn main() {
    let args = parse_args();
    let netlists: Vec<Netlist> = args
        .designs
        .iter()
        .map(|name| {
            generators::iscas_like(name, args.scale, args.seed).unwrap_or_else(|| {
                eprintln!("unknown ISCAS-like design `{name}`");
                std::process::exit(2);
            })
        })
        .collect();
    let model = PowerModel::default();
    let cfg = CampaignConfig::new(args.traces, args.traces, args.seed);
    let suite_traces = (args.traces * 2 * netlists.len()) as f64;
    let cores = Parallelism::auto().threads();

    eprintln!(
        "[fleet bench] suite {:?} (scale {}): {} traces/class/design, {} cores",
        args.designs, args.scale, args.traces, cores
    );

    // Serial reference: campaign by campaign, each on the full worker pool —
    // the pre-fleet suite path and the t-maps every fleet run must hit.
    let t0 = Instant::now();
    let mut reference_bits: Vec<Vec<u64>> = Vec::new();
    for netlist in &netlists {
        let acc: WelchAccumulator =
            run_campaign_parallel(netlist, &model, &cfg, Parallelism::auto())
                .expect("campaign runs");
        let leakage = acc.leakage();
        reference_bits.push(
            netlist
                .ids()
                .map(|id| leakage.result(id).t.to_bits())
                .collect(),
        );
    }
    let serial_seconds = t0.elapsed().as_secs_f64();
    let serial_tps = suite_traces / serial_seconds.max(1e-9);
    eprintln!(
        "  serial (campaign-by-campaign): {serial_seconds:.3}s  ({serial_tps:.0} traces/sec)"
    );

    let mut thread_counts = vec![1usize, 2];
    if cores > 2 {
        thread_counts.push(cores);
    }
    thread_counts.dedup();

    let mut rows: Vec<String> = Vec::new();
    let mut identical = true;
    let mut best_fleet_tps = f64::NAN;
    for &threads in &thread_counts {
        let jobs: Vec<FleetJob<'_, WelchAccumulator>> = netlists
            .iter()
            .map(|n| FleetJob::new(n, &model, cfg.clone()))
            .collect();
        let t0 = Instant::now();
        let outcomes = run_fleet(jobs, Parallelism::new(threads)).expect("fleet runs");
        let seconds = t0.elapsed().as_secs_f64();
        let tps = suite_traces / seconds.max(1e-9);
        let mut run_identical = true;
        for ((netlist, outcome), bits) in netlists.iter().zip(&outcomes).zip(&reference_bits) {
            let leakage = outcome.sink.leakage();
            let got: Vec<u64> = netlist
                .ids()
                .map(|id| leakage.result(id).t.to_bits())
                .collect();
            run_identical &= got == *bits;
        }
        identical &= run_identical;
        best_fleet_tps = if best_fleet_tps.is_nan() {
            tps
        } else {
            best_fleet_tps.max(tps)
        };
        eprintln!(
            "  fleet {threads:>2} threads: {seconds:.3}s  ({tps:.0} traces/sec), \
             identical: {run_identical}"
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"seconds\": {seconds:.4}, \
             \"traces_per_sec\": {tps:.1}, \"bit_identical\": {run_identical}}}"
        ));
    }

    // ≥ 1.0 means the fleet at least matches the serial suite path; on a
    // multi-core host with small designs it should exceed it (the recorded
    // host_parallelism explains a ≈ 1.0 artifact from a 1-core container).
    let fleet_vs_serial = best_fleet_tps / serial_tps;
    let designs_json: Vec<String> = args
        .designs
        .iter()
        .zip(&netlists)
        .map(|(name, n)| format!("{{\"name\": \"{name}\", \"gates\": {}}}", n.gate_count()))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fleet\",\n  \"designs\": [{}],\n  \"scale\": {},\n  \
         \"traces_per_class\": {},\n  \"seed\": {},\n  \"quick\": {},\n  \
         \"available_parallelism\": {},\n  \"peak_rss_kb\": {},\n  \"suite_traces\": {},\n  \
         \"serial_seconds\": {:.4},\n  \"serial_traces_per_sec\": {:.1},\n  \
         \"fleet_runs\": [\n{}\n  ],\n  \"fleet_vs_serial\": {:.3},\n  \
         \"bit_identical\": {}\n}}\n",
        designs_json.join(", "),
        args.scale,
        args.traces,
        args.seed,
        args.quick,
        polaris_bench::host_parallelism(),
        polaris_bench::json_u64(polaris_bench::peak_rss_kb()),
        suite_traces as usize,
        serial_seconds,
        serial_tps,
        rows.join(",\n"),
        fleet_vs_serial,
        identical
    );
    polaris_bench::emit_bench_json("fleet bench", &args.out, &json).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });

    if !identical {
        eprintln!("ERROR: a fleet job diverged from its standalone campaign — the fleet must be bit-identical");
        std::process::exit(1);
    }
}
