//! Ablation studies on the design choices §V-A calls out:
//!
//! * θr sweep — data-imbalance / model-quality trade-off (the paper picks
//!   0.70 because higher values starve the positive class);
//! * locality L sweep — feature-richness vs cost;
//! * trace-count sensitivity of the TVLA baseline;
//! * mask-size sweep on one design.

use polaris::config::PolarisConfig;
use polaris::pipeline::{MaskBudget, PolarisPipeline};
use polaris::report::{fmt_f, TextTable};
use polaris_bench::HarnessConfig;
use polaris_netlist::generators;
use polaris_netlist::transform::decompose;
use polaris_sim::{CampaignConfig, PowerModel};

fn main() {
    let cfg = HarnessConfig::from_args();
    let power = PowerModel::default();
    let target = generators::des3(cfg.scale, cfg.seed);

    theta_r_sweep(&cfg, &power, &target);
    locality_sweep(&cfg, &power, &target);
    trace_sweep(&cfg, &target);
    mask_size_sweep(&cfg, &power, &target);
    glitch_model_comparison(&cfg, &power);
}

fn glitch_model_comparison(cfg: &HarnessConfig, power: &PowerModel) {
    // Zero-delay vs unit-delay: glitching concentrates leakage in deep
    // logic, raising both mean |t| and its spread across gates.
    let mut t = TextTable::new(
        [
            "design",
            "model",
            "mean |t|",
            "max |t|",
            "leaky cells",
            "top-10% |t| share",
        ]
        .map(String::from)
        .to_vec(),
    );
    for name in ["multiplier", "voter"] {
        let design = generators::by_name(name, cfg.scale, cfg.seed).expect("known design");
        let (norm, _) = decompose(&design).expect("valid design");
        for glitch in [false, true] {
            let mut campaign = CampaignConfig::new(cfg.traces, cfg.traces, cfg.seed);
            if glitch {
                campaign = campaign.with_glitches();
            }
            let leakage = polaris_tvla::assess(&norm, power, &campaign).expect("assessment");
            let s = leakage.summarize(&norm);
            // Leakage concentration: share of total |t| held by the top 10%
            // of cells.
            let mut ts: Vec<f64> = norm
                .cell_ids()
                .iter()
                .map(|&id| leakage.abs_t(id))
                .collect();
            ts.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            let top = ts.len().div_ceil(10);
            let share = ts[..top].iter().sum::<f64>() / ts.iter().sum::<f64>().max(1e-12);
            t.push_row(vec![
                name.to_string(),
                if glitch {
                    "unit-delay (glitch)"
                } else {
                    "zero-delay"
                }
                .to_string(),
                fmt_f(s.mean_abs_t, 2),
                fmt_f(s.max_abs_t, 2),
                s.leaky_cells.to_string(),
                fmt_f(share * 100.0, 1),
            ]);
        }
    }
    println!("\nAblation E: delay-model comparison (glitches concentrate leakage)\n");
    println!("{}", t.render());
}

fn base_config(cfg: &HarnessConfig) -> PolarisConfig {
    cfg.polaris_config(polaris::ModelKind::Adaboost)
}

fn theta_r_sweep(cfg: &HarnessConfig, power: &PowerModel, target: &polaris_netlist::Netlist) {
    let mut t = TextTable::new(
        ["theta_r", "samples", "positives", "pos %", "reduction %"]
            .map(String::from)
            .to_vec(),
    );
    for theta in [0.3, 0.5, 0.7, 0.9] {
        eprintln!("[ablation] theta_r = {theta}…");
        let config = PolarisConfig {
            theta_r: theta,
            ..base_config(cfg)
        };
        let trained = match PolarisPipeline::new(config).train(&cfg.training_designs(), power) {
            Ok(tr) => tr,
            Err(e) => {
                t.push_row(vec![
                    fmt_f(theta, 2),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("({e})"),
                ]);
                continue;
            }
        };
        let (neg, pos) = trained.dataset().class_counts();
        let red = trained
            .mask_design(target, power, MaskBudget::LeakyFraction(1.0))
            .map(|r| r.reduction_pct())
            .unwrap_or(f64::NAN);
        t.push_row(vec![
            fmt_f(theta, 2),
            (neg + pos).to_string(),
            pos.to_string(),
            fmt_f(100.0 * pos as f64 / (neg + pos).max(1) as f64, 1),
            fmt_f(red, 2),
        ]);
    }
    println!("\nAblation A: theta_r sweep (label imbalance vs effectiveness)\n");
    println!("{}", t.render());
}

fn locality_sweep(cfg: &HarnessConfig, power: &PowerModel, target: &polaris_netlist::Netlist) {
    let mut t = TextTable::new(["L", "features", "reduction %"].map(String::from).to_vec());
    for l in [1usize, 3, 5, 7, 11] {
        eprintln!("[ablation] L = {l}…");
        let config = PolarisConfig {
            locality: l,
            ..base_config(cfg)
        };
        let trained = match PolarisPipeline::new(config).train(&cfg.training_designs(), power) {
            Ok(tr) => tr,
            Err(_) => continue,
        };
        let red = trained
            .mask_design(target, power, MaskBudget::LeakyFraction(1.0))
            .map(|r| r.reduction_pct())
            .unwrap_or(f64::NAN);
        t.push_row(vec![
            l.to_string(),
            trained.extractor().n_features().to_string(),
            fmt_f(red, 2),
        ]);
    }
    println!("\nAblation B: locality L sweep\n");
    println!("{}", t.render());
}

fn trace_sweep(cfg: &HarnessConfig, target: &polaris_netlist::Netlist) {
    let power = PowerModel::default();
    let (norm, _) = decompose(target).expect("valid design");
    let mut t = TextTable::new(
        ["traces/class", "mean |t|", "max |t|", "leaky cells"]
            .map(String::from)
            .to_vec(),
    );
    for traces in [50usize, 150, 400, 1000] {
        let campaign = CampaignConfig::new(traces, traces, cfg.seed);
        let s = polaris_tvla::assess(&norm, &power, &campaign)
            .expect("assessment")
            .summarize(&norm);
        t.push_row(vec![
            traces.to_string(),
            fmt_f(s.mean_abs_t, 2),
            fmt_f(s.max_abs_t, 2),
            s.leaky_cells.to_string(),
        ]);
    }
    println!("\nAblation C: TVLA trace-count sensitivity (t grows ~ sqrt(N))\n");
    println!("{}", t.render());
}

fn mask_size_sweep(cfg: &HarnessConfig, power: &PowerModel, target: &polaris_netlist::Netlist) {
    eprintln!("[ablation] mask-size sweep…");
    let trained = cfg.train_polaris(polaris::ModelKind::Adaboost);
    let mut t = TextTable::new(
        ["mask % of cells", "gates masked", "reduction %", "area x"]
            .map(String::from)
            .to_vec(),
    );
    let lib = polaris_masking::CellLibrary::default();
    let (norm, _) = decompose(target).expect("valid design");
    let base_area = polaris_masking::analyze_overhead(&norm, &lib, 32, cfg.seed)
        .expect("overhead")
        .area_um2;
    for pct in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let report = trained
            .mask_design(target, power, MaskBudget::CellFraction(pct))
            .expect("pipeline runs");
        let area = polaris_masking::analyze_overhead(&report.masked.netlist, &lib, 32, cfg.seed)
            .expect("overhead")
            .area_um2;
        t.push_row(vec![
            fmt_f(pct * 100.0, 0),
            report.masked_gates.len().to_string(),
            fmt_f(report.reduction_pct(), 2),
            fmt_f(area / base_area, 2),
        ]);
    }
    println!("\nAblation D: mask-size sweep on des3 (leakage vs area)\n");
    println!("{}", t.render());
}
