//! Shared harness for the table/figure reproduction binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale N     benchmark generator scale factor      (default 1)
//! --traces N    TVLA traces per class                 (default 300)
//! --seed N      master seed                           (default 7)
//! --threads N   campaign worker threads               (default 0 = all cores)
//! --designs a,b restrict to a subset of the 11 designs
//! --paper       paper-scale profile (scale 3, 10 000 traces) — slow
//! ```
//!
//! `--threads` is a pure throughput knob: the sharded campaign engine is
//! bit-identical at any worker count.
//!
//! Run e.g. `cargo run --release -p polaris-bench --bin table2`.

use polaris::config::{ModelKind, PolarisConfig};
use polaris::pipeline::{PolarisPipeline, TrainedPolaris};
use polaris_netlist::{generators, Netlist};
use polaris_sim::{Parallelism, PowerModel};

/// Common harness parameters parsed from the command line.
#[derive(Clone, Debug, PartialEq)]
pub struct HarnessConfig {
    /// Generator scale factor.
    pub scale: u32,
    /// TVLA traces per class.
    pub traces: usize,
    /// Master seed.
    pub seed: u64,
    /// Campaign worker threads (0 = all available cores).
    pub threads: usize,
    /// Evaluation designs (defaults to the paper's 11).
    pub designs: Vec<String>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 1,
            traces: 300,
            seed: 7,
            threads: 0,
            designs: generators::EVALUATION_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

impl HarnessConfig {
    /// Parses `std::env::args()`; unknown flags abort with usage help.
    pub fn from_args() -> Self {
        let mut cfg = HarnessConfig::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need_value = |i: usize| -> &str {
                args.get(i + 1).map(|s| s.as_str()).unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--scale" => {
                    cfg.scale = need_value(i).parse().expect("--scale takes an integer");
                    i += 2;
                }
                "--traces" => {
                    cfg.traces = need_value(i).parse().expect("--traces takes an integer");
                    i += 2;
                }
                "--seed" => {
                    cfg.seed = need_value(i).parse().expect("--seed takes an integer");
                    i += 2;
                }
                "--threads" => {
                    cfg.threads = need_value(i).parse().expect("--threads takes an integer");
                    i += 2;
                }
                "--designs" => {
                    cfg.designs = need_value(i)
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect();
                    i += 2;
                }
                "--paper" => {
                    cfg.scale = 3;
                    cfg.traces = 10_000;
                    i += 1;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale N  --traces N  --seed N  --threads N  --designs a,b,c  --paper"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }

    /// POLARIS configuration matched to the harness size.
    pub fn polaris_config(&self, model: ModelKind) -> PolarisConfig {
        PolarisConfig {
            msize: 30 * self.scale as usize,
            iterations: 8,
            max_traces: self.traces,
            model,
            n_estimators: 60,
            learning_rate: 0.01,
            max_depth: 3,
            seed: self.seed,
            threads: self.threads,
            ..Default::default()
        }
    }

    /// The harness's campaign worker budget (`Parallelism::new` treats 0 as
    /// "all cores").
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.threads)
    }

    /// The evaluation designs selected by `--designs`, in table order.
    pub fn evaluation_designs(&self) -> Vec<Netlist> {
        self.designs
            .iter()
            .map(|name| {
                generators::by_name(name, self.scale, self.seed).unwrap_or_else(|| {
                    eprintln!("unknown design {name}");
                    std::process::exit(2);
                })
            })
            .collect()
    }

    /// The ISCAS-85-like training suite at this scale.
    pub fn training_designs(&self) -> Vec<Netlist> {
        generators::training_suite(self.scale, self.seed)
    }

    /// Trains POLARIS on the training suite with the given model family,
    /// logging progress to stderr.
    pub fn train_polaris(&self, model: ModelKind) -> TrainedPolaris {
        let power = PowerModel::default();
        let pipeline = PolarisPipeline::new(self.polaris_config(model));
        eprintln!(
            "[harness] training POLARIS ({}) on {} designs, {} traces/class…",
            model.name(),
            self.training_designs().len(),
            self.traces
        );
        let trained = pipeline
            .train(&self.training_designs(), &power)
            .unwrap_or_else(|e| {
                eprintln!("training failed: {e}");
                std::process::exit(1);
            });
        let (neg, pos) = trained.dataset().class_counts();
        let v = trained.validation();
        eprintln!(
            "[harness] cognition dataset: {} samples ({} good / {} bad); holdout AUC {:.3}",
            trained.dataset().len(),
            pos,
            neg,
            v.auc
        );
        trained
    }
}

/// Writes a `BENCH_*.json` artifact the way every bench binary does: the
/// file itself, the full JSON on stdout (so CI logs carry the numbers), and
/// a one-line stderr note tagged with the bench's label. Shared by the
/// `campaign`, `dist`, and `fleet` binaries so the emission protocol cannot
/// drift between them.
///
/// # Errors
///
/// Returns a message naming the path when the file cannot be written.
pub fn emit_bench_json(label: &str, path: &str, json: &str) -> Result<(), String> {
    // Atomic tmp-then-rename so a bench killed mid-write (CI timeout, OOM)
    // never leaves a truncated artifact at the committed path.
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, json).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} to {path}: {e}"))?;
    println!("{json}");
    eprintln!("[{label}] wrote {path}");
    Ok(())
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`) — **Linux-only** semantics: `None` on hosts without
/// procfs (macOS, Windows, some containers) or when the `VmHWM` line cannot
/// be parsed, so a missing measurement is distinguishable from a real one
/// (BENCH jsons emit it as `null` via [`json_u64`] rather than a fake `0`).
/// A process-wide high-water mark, so benches comparing arms must run the
/// cheapest arm first for per-arm readings to mean anything. Recorded in
/// every `BENCH_*.json` so a memory regression shows up in the committed
/// artifacts, not just in interactive profiling.
pub fn peak_rss_kb() -> Option<u64> {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
}

/// Renders an optional measurement as a JSON number or `null` — the shared
/// formatter for fields like `peak_rss_kb` whose absence must stay
/// distinguishable from a measured zero.
pub fn json_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Renders an optional kB reading as a human `"N MB"` string (or
/// `"unavailable"` off-Linux) for progress lines.
pub fn rss_mb(kb: Option<u64>) -> String {
    match kb {
        Some(kb) => format!("{} MB", kb / 1024),
        None => "unavailable".to_string(),
    }
}

/// The host's available parallelism (0 when it cannot be determined) —
/// recorded in every BENCH json so a committed artifact with speedup ≈ 1.0
/// on a 1-core CI container is self-explaining.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_bench_json_writes_the_artifact() {
        // The workspace target dir is the conventional scratch space.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/emit_bench_json_test.json"
        );
        let json = "{\n  \"bench\": \"test\"\n}\n";
        emit_bench_json("test bench", path, json).expect("write succeeds");
        assert_eq!(std::fs::read_to_string(path).unwrap(), json);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn emit_bench_json_reports_unwritable_paths() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/no-such-dir-for-bench-json/out.json"
        );
        let err = emit_bench_json("test bench", path, "{}").unwrap_err();
        assert!(err.contains("cannot write"), "{err}");
        assert!(err.contains("out.json"), "{err}");
    }

    #[test]
    fn peak_rss_is_measured_on_linux_and_null_renders_elsewhere() {
        let kb = peak_rss_kb();
        if cfg!(target_os = "linux") {
            // A running test process has touched at least a few hundred kB.
            let kb = kb.expect("VmHWM should be readable on Linux");
            assert!(kb > 0, "VmHWM should be positive, got {kb}");
            assert_eq!(json_u64(Some(kb)), kb.to_string());
        }
        // A failed measurement renders as JSON null, never a fake zero.
        assert_eq!(json_u64(None), "null");
    }

    #[test]
    fn host_parallelism_is_sane() {
        // 0 is the "unknown" sentinel; anything else is a real core count.
        let p = host_parallelism();
        assert!(p == 0 || p >= 1);
    }

    #[test]
    fn defaults_cover_all_eleven_designs() {
        let cfg = HarnessConfig::default();
        assert_eq!(cfg.designs.len(), 11);
        assert_eq!(cfg.evaluation_designs().len(), 11);
    }

    #[test]
    fn polaris_config_tracks_harness() {
        let cfg = HarnessConfig {
            traces: 123,
            seed: 9,
            ..Default::default()
        };
        let pc = cfg.polaris_config(ModelKind::Xgboost);
        assert_eq!(pc.max_traces, 123);
        assert_eq!(pc.seed, 9);
        assert_eq!(pc.model, ModelKind::Xgboost);
    }

    #[test]
    fn training_suite_nonempty() {
        let cfg = HarnessConfig::default();
        assert_eq!(cfg.training_designs().len(), 6);
    }
}
