//! End-to-end runtime comparison: POLARIS's TVLA-free mitigation path vs
//! VALIANT's TVLA-in-the-loop flow — the paper's ~6x speedup claim, plus
//! scaling of the structural ranking with design size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use polaris::config::PolarisConfig;
use polaris::masking_flow::rank_gates;
use polaris::pipeline::PolarisPipeline;
use polaris_masking::{apply_masking, MaskingStyle};
use polaris_netlist::generators;
use polaris_netlist::transform::decompose;
use polaris_sim::{CampaignConfig, PowerModel};
use polaris_valiant::{ValiantConfig, ValiantFlow};

fn trained() -> polaris::TrainedPolaris {
    let config = PolarisConfig {
        msize: 20,
        iterations: 4,
        max_traces: 150,
        n_estimators: 30,
        ..PolarisConfig::fast_profile(7)
    };
    let training = vec![
        generators::iscas_like("c432", 1, 5).expect("known design"),
        generators::iscas_like("c499", 1, 6).expect("known design"),
    ];
    PolarisPipeline::new(config)
        .train(&training, &PowerModel::default())
        .expect("training succeeds")
}

fn bench_mitigation_paths(c: &mut Criterion) {
    let trained = trained();
    let power = PowerModel::default();
    let (design, _) = decompose(&generators::sin(1, 7)).expect("valid design");
    let msize = design.cell_ids().len() / 4;

    let mut g = c.benchmark_group("mitigation_sin");
    g.sample_size(10);
    g.bench_function("polaris_rank_and_mask", |b| {
        b.iter(|| {
            let ranked = rank_gates(
                &design,
                trained.model(),
                Some(trained.rules()),
                trained.extractor(),
            )
            .expect("rank");
            let selected: Vec<_> = ranked.iter().take(msize).map(|(id, _)| *id).collect();
            black_box(apply_masking(&design, &selected, MaskingStyle::Trichina).expect("mask"))
        })
    });
    g.bench_function("valiant_tvla_loop", |b| {
        b.iter(|| {
            let flow = ValiantFlow::new(ValiantConfig {
                campaign: CampaignConfig::new(150, 150, 3),
                max_iterations: 2,
                ..Default::default()
            });
            black_box(flow.run(&design, &power).expect("valiant"))
        })
    });
    g.finish();
}

fn bench_ranking_scaling(c: &mut Criterion) {
    let trained = trained();
    let mut g = c.benchmark_group("polaris_ranking_scaling");
    g.sample_size(10);
    for scale in [1u32, 2] {
        let (design, _) = decompose(&generators::multiplier(scale, 7)).expect("valid design");
        g.bench_function(format!("multiplier_{}_gates", design.gate_count()), |b| {
            b.iter(|| {
                black_box(
                    rank_gates(
                        &design,
                        trained.model(),
                        Some(trained.rules()),
                        trained.extractor(),
                    )
                    .expect("rank"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mitigation_paths, bench_ranking_scaling);
criterion_main!(benches);
