//! Simulator benchmarks: bit-parallel evaluation throughput and campaign
//! cost across design sizes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use polaris_netlist::generators;
use polaris_sim::{CampaignConfig, PowerModel, Simulator};

fn bench_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("levelized_eval");
    for (name, design) in [
        ("des3", generators::des3(1, 7)),
        ("multiplier", generators::multiplier(1, 7)),
        ("log2", generators::log2(1, 7)),
    ] {
        let sim = Simulator::new(&design).expect("compiles");
        let data: Vec<u64> = (0..design.data_inputs().len())
            .map(|i| 0x9E37_79B9u64.wrapping_mul(i as u64 + 1))
            .collect();
        // 64 traces advance per eval → throughput in gate-evaluations.
        g.throughput(Throughput::Elements(64 * design.gate_count() as u64));
        g.bench_function(format!("{name}_{}_gates", design.gate_count()), |b| {
            let mut st = sim.zero_state();
            b.iter(|| {
                sim.eval(&mut st, black_box(&data), &[]);
                black_box(st.value(design.outputs()[0].1))
            })
        });
    }
    g.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let design = generators::des3(1, 7);
    let model = PowerModel::default();
    let mut g = c.benchmark_group("campaign_des3");
    g.sample_size(10);
    for traces in [128usize, 512] {
        g.throughput(Throughput::Elements(2 * traces as u64));
        g.bench_function(format!("{traces}_traces_per_class"), |b| {
            b.iter(|| {
                let cfg = CampaignConfig::new(traces, traces, 5);
                black_box(
                    polaris_sim::campaign::collect_gate_samples(&design, &model, &cfg)
                        .expect("campaign"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eval, bench_campaign);
criterion_main!(benches);
