//! TVLA benchmarks: one-pass streaming moments vs the naive two-pass
//! computation (the paper's Eq. 2 vs Eq. 3–4 motivation), Welch throughput,
//! and a full per-gate assessment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use polaris_netlist::generators;
use polaris_sim::{CampaignConfig, PowerModel};
use polaris_tvla::{welch_t, StreamingMoments};

fn pseudo_random(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
        })
        .collect()
}

/// Naive two-pass mean/variance (recomputed from scratch, the slow path the
/// paper's §II-A describes).
fn naive_two_pass(xs: &[f64]) -> (f64, f64) {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var)
}

fn bench_moments(c: &mut Criterion) {
    let xs = pseudo_random(100_000, 42);
    let mut g = c.benchmark_group("moments_100k");
    g.bench_function("one_pass_streaming", |b| {
        b.iter(|| {
            let mut m = StreamingMoments::new();
            m.extend_from_slice(black_box(&xs));
            black_box((m.mean(), m.sample_variance(), m.central_moment4()))
        })
    });
    g.bench_function("naive_two_pass", |b| {
        b.iter(|| black_box(naive_two_pass(black_box(&xs))))
    });
    // Incremental update cost: extending an accumulator by one batch vs
    // recomputing the naive statistics over the grown set.
    let grown: Vec<f64> = pseudo_random(101_000, 42);
    g.bench_function("incremental_batch_update", |b| {
        let mut base = StreamingMoments::new();
        base.extend_from_slice(&xs);
        b.iter_batched(
            || base,
            |mut m| {
                m.extend_from_slice(black_box(&grown[100_000..]));
                black_box(m.sample_variance())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("naive_recompute_grown", |b| {
        b.iter(|| black_box(naive_two_pass(black_box(&grown))))
    });
    g.finish();
}

fn bench_welch(c: &mut Criterion) {
    let a = pseudo_random(10_000, 1);
    let bpop = pseudo_random(10_000, 2);
    let mut ma = StreamingMoments::new();
    ma.extend_from_slice(&a);
    let mut mb = StreamingMoments::new();
    mb.extend_from_slice(&bpop);
    c.bench_function("welch_t_from_moments", |b| {
        b.iter(|| black_box(welch_t(black_box(&ma), black_box(&mb))))
    });
}

fn bench_assessment(c: &mut Criterion) {
    let design = generators::sin(1, 7);
    let model = PowerModel::default();
    let mut g = c.benchmark_group("gate_assessment_sin");
    g.sample_size(10);
    for traces in [100usize, 400] {
        g.bench_function(format!("assess_{traces}_traces"), |b| {
            b.iter(|| {
                let cfg = CampaignConfig::new(traces, traces, 3);
                black_box(polaris_tvla::assess(&design, &model, &cfg).expect("assess"))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_moments, bench_welch, bench_assessment);
criterion_main!(benches);
