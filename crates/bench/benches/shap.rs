//! SHAP benchmarks: exact TreeSHAP vs KernelSHAP vs brute force on the same
//! model, demonstrating why the polynomial algorithm matters.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use polaris_ml::adaboost::{AdaBoost, AdaBoostConfig};
use polaris_ml::{Dataset, TreeEnsemble};
use polaris_xai::exact::exact_shapley;
use polaris_xai::kernel_shap::{kernel_shap, KernelShapConfig};
use polaris_xai::tree_shap::tree_shap;

fn toy_model(features: usize) -> (AdaBoost, Dataset) {
    let names = (0..features).map(|i| format!("f{i}")).collect();
    let mut d = Dataset::new(names);
    for i in 0..400usize {
        let row: Vec<f32> = (0..features).map(|f| ((i >> (f % 8)) & 1) as f32).collect();
        let y = u8::from(row[0] != row[1] || (features > 3 && row[2] * row[3] > 0.0));
        d.push(&row, y).unwrap();
    }
    let model = AdaBoost::fit(
        &d,
        &AdaBoostConfig {
            n_estimators: 25,
            max_depth: 3,
            ..Default::default()
        },
    )
    .unwrap();
    (model, d)
}

fn bench_shap_methods(c: &mut Criterion) {
    let (model, data) = toy_model(10);
    let background: Vec<Vec<f32>> = (0..32).map(|i| data.row(i * 3).to_vec()).collect();
    let x: Vec<f32> = data.row(1).to_vec();
    let f = |v: &[f32]| model.margin(v);

    let mut g = c.benchmark_group("shap_10_features");
    g.sample_size(10);
    g.bench_function("tree_shap_exact", |b| {
        b.iter(|| black_box(tree_shap(&model, &background, black_box(&x))))
    });
    g.bench_function("kernel_shap_exhaustive", |b| {
        b.iter(|| {
            black_box(kernel_shap(
                &f,
                black_box(&x),
                &background,
                &KernelShapConfig::default(),
            ))
        })
    });
    g.bench_function("bruteforce_oracle", |b| {
        b.iter(|| black_box(exact_shapley(&f, black_box(&x), &background)))
    });
    g.finish();
}

fn bench_tree_shap_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_shap_background_scaling");
    let (model, data) = toy_model(16);
    let x: Vec<f32> = data.row(0).to_vec();
    for bg_size in [8usize, 64, 256] {
        let background: Vec<Vec<f32>> = (0..bg_size)
            .map(|i| data.row(i % data.len()).to_vec())
            .collect();
        g.bench_function(format!("background_{bg_size}"), |b| {
            b.iter(|| black_box(tree_shap(&model, &background, black_box(&x))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shap_methods, bench_tree_shap_scaling);
criterion_main!(benches);
