//! End-to-end integration: the full POLARIS workflow across crates.

use polaris::config::{ModelKind, PolarisConfig};
use polaris::pipeline::{MaskBudget, PolarisPipeline};
use polaris_netlist::generators;
use polaris_sim::PowerModel;

fn fast_config(seed: u64) -> PolarisConfig {
    PolarisConfig {
        msize: 10,
        iterations: 4,
        max_traces: 200,
        n_estimators: 25,
        learning_rate: 0.5,
        ..PolarisConfig::fast_profile(seed)
    }
}

fn small_training() -> Vec<polaris_netlist::Netlist> {
    vec![
        generators::iscas_like("c432", 1, 5).expect("known design"),
        generators::iscas_like("c499", 1, 6).expect("known design"),
    ]
}

#[test]
fn train_then_protect_unseen_design() {
    let power = PowerModel::default();
    let trained = PolarisPipeline::new(fast_config(3))
        .train(&small_training(), &power)
        .expect("training succeeds");

    // The cognition dataset has both classes and real volume.
    let (bad, good) = trained.dataset().class_counts();
    assert!(good > 0 && bad > 0, "classes {good}/{bad}");

    // Protect a design family never seen in training.
    let target = generators::voter(1, 77);
    let report = trained
        .mask_design(&target, &power, MaskBudget::LeakyFraction(1.0))
        .expect("masking succeeds");
    assert!(
        report.reduction_pct() > 15.0,
        "full leaky-gate masking should reduce leakage materially: {:.1}%",
        report.reduction_pct()
    );
    assert!(
        report.after.leaky_cells < report.before.leaky_cells,
        "leaky cell count should drop: {} -> {}",
        report.before.leaky_cells,
        report.after.leaky_cells
    );
}

#[test]
fn masked_design_is_functionally_equivalent() {
    use polaris_netlist::transform::decompose;
    use polaris_sim::Simulator;

    let power = PowerModel::default();
    let trained = PolarisPipeline::new(fast_config(5))
        .train(&small_training(), &power)
        .expect("training succeeds");
    let target = generators::iscas_c17();
    let report = trained
        .mask_design(&target, &power, MaskBudget::CellFraction(0.6))
        .expect("masking succeeds");

    let (norm, _) = decompose(&target).expect("valid design");
    let sim_o = Simulator::new(&norm).expect("compiles");
    let sim_m = Simulator::new(&report.masked.netlist).expect("compiles");
    for bits in 0..32u32 {
        let data: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
        // Any mask assignment leaves the function unchanged.
        let masks: Vec<bool> = (0..report.masked.netlist.mask_inputs().len())
            .map(|i| (bits as usize + i).is_multiple_of(3))
            .collect();
        assert_eq!(
            sim_o.eval_bool(&data, &[]).expect("widths ok"),
            sim_m.eval_bool(&data, &masks).expect("widths ok"),
            "input {bits:05b}"
        );
    }
}

#[test]
fn pipeline_is_deterministic() {
    let power = PowerModel::default();
    let run = || {
        let trained = PolarisPipeline::new(fast_config(9))
            .train(&small_training(), &power)
            .expect("training succeeds");
        let report = trained
            .mask_design(&generators::sin(1, 5), &power, MaskBudget::Count(10))
            .expect("masking succeeds");
        (
            trained.dataset().len(),
            report.masked_gates.clone(),
            report.before.total_abs_t,
            report.after.total_abs_t,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn all_model_kinds_complete_the_pipeline() {
    let power = PowerModel::default();
    for kind in ModelKind::ALL {
        let cfg = PolarisConfig {
            model: kind,
            ..fast_config(11)
        };
        let trained = PolarisPipeline::new(cfg)
            .train(&small_training(), &power)
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
        let report = trained
            .mask_design(
                &generators::iscas_c17(),
                &power,
                MaskBudget::CellFraction(1.0),
            )
            .expect("masking succeeds");
        assert!(
            report.reduction_pct() > 0.0,
            "{}: {:.1}%",
            kind.name(),
            report.reduction_pct()
        );
    }
}

#[test]
fn zero_budget_masks_nothing() {
    let power = PowerModel::default();
    // Extra traces shrink the before/after assessment noise the final
    // tolerance rides on (the two reporting campaigns use different seeds).
    let config = PolarisConfig {
        max_traces: 800,
        ..fast_config(21)
    };
    let trained = PolarisPipeline::new(config)
        .train(&small_training(), &power)
        .expect("training succeeds");
    let report = trained
        .mask_design(&generators::iscas_c17(), &power, MaskBudget::Count(0))
        .expect("masking succeeds");
    assert!(report.masked_gates.is_empty());
    assert_eq!(report.masked.added_mask_bits, 0);
    // Reduction is pure assessment noise around zero.
    assert!(report.reduction_pct().abs() < 25.0);
}

#[test]
fn oversized_budget_clamps_to_maskable_cells() {
    let power = PowerModel::default();
    let trained = PolarisPipeline::new(fast_config(23))
        .train(&small_training(), &power)
        .expect("training succeeds");
    let report = trained
        .mask_design(&generators::iscas_c17(), &power, MaskBudget::Count(10_000))
        .expect("masking succeeds");
    assert_eq!(report.masked_gates.len(), 6, "c17 has six maskable cells");
}

#[test]
fn bundle_roundtrip_through_files_matches() {
    let power = PowerModel::default();
    let trained = PolarisPipeline::new(fast_config(29))
        .train(&small_training(), &power)
        .expect("training succeeds");
    let text = polaris::persist::save_trained(&trained);
    let loaded = polaris::persist::load_trained(&text).expect("bundle loads");
    let target = generators::iscas_c17();
    let a = trained
        .mask_design(&target, &power, MaskBudget::Count(4))
        .expect("masking succeeds");
    let b = loaded
        .mask_design(&target, &power, MaskBudget::Count(4))
        .expect("masking succeeds");
    assert_eq!(
        a.masked_gates, b.masked_gates,
        "persisted model selects the same gates"
    );
}

#[test]
fn rules_and_waterfalls_available_after_training() {
    let power = PowerModel::default();
    let trained = PolarisPipeline::new(fast_config(13))
        .train(&small_training(), &power)
        .expect("training succeeds");
    // Waterfall over an arbitrary cognition sample renders non-trivially.
    let w = trained
        .explainer()
        .waterfall(trained.model(), trained.dataset().row(0));
    let text = w.render(6, 20);
    assert!(text.contains("E[f(x)]"));
    // Every contribution row names a structural feature (slot kinds,
    // connectivity, or G0 scalars).
    assert_eq!(
        w.contributions.len(),
        trained.extractor().n_features(),
        "waterfall covers the full feature vector"
    );
    assert!(
        w.contributions
            .iter()
            .any(|(name, _, _)| name.contains('G')),
        "feature names are structural"
    );
    // Efficiency axiom on the real model.
    let e = trained
        .explainer()
        .explain(trained.model(), trained.dataset().row(0));
    assert!(e.efficiency_gap().abs() < 1e-8);
}
