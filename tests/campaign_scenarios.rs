//! Scenario breadth of the parallel campaign engine (ISSUE 3): fixed-vs-fixed
//! TVLA end-to-end through the sharded/round-checkpointed engine (previously
//! only fixed-vs-random had integration coverage), plus a bivariate-sweep
//! smoke test fed from parallel dense collection.

use polaris_netlist::generators;
use polaris_sim::campaign::collect_gate_samples_parallel;
use polaris_sim::{CampaignConfig, Parallelism, PowerModel};
use polaris_tvla::bivariate::bivariate_sweep;
use polaris_tvla::{assess_adaptive, assess_parallel, SequentialConfig, TVLA_THRESHOLD};

fn c17_vectors() -> (Vec<bool>, Vec<bool>) {
    (
        vec![true, false, true, false, true],
        vec![false, true, true, true, false],
    )
}

/// Distinct fixed vectors drive distinct deterministic toggle patterns, so a
/// fixed-vs-fixed campaign flags the data-driven cells — through the same
/// parallel engine as fixed-vs-random, at every thread count.
#[test]
fn fixed_vs_fixed_detects_vector_dependent_leakage() {
    let design = generators::iscas_c17();
    let model = PowerModel::default();
    let (v1, v2) = c17_vectors();
    let cfg = CampaignConfig::new(1500, 1500, 5)
        .with_fixed_vector(v1)
        .fixed_vs_fixed(v2);
    let leakage = assess_parallel(&design, &model, &cfg, Parallelism::new(4)).expect("campaign");
    let s = leakage.summarize(&design);
    assert!(
        s.max_abs_t > TVLA_THRESHOLD,
        "distinct fixed classes must be distinguishable: max |t| = {}",
        s.max_abs_t
    );
    assert!(s.leaky_cells > 0);
}

/// Identical vectors in both classes give two statistically identical
/// populations: nothing may be flagged.
#[test]
fn fixed_vs_fixed_same_vector_is_silent() {
    let design = generators::iscas_c17();
    let model = PowerModel::default();
    let (v1, _) = c17_vectors();
    let cfg = CampaignConfig::new(1500, 1500, 5)
        .with_fixed_vector(v1.clone())
        .fixed_vs_fixed(v1);
    let leakage = assess_parallel(&design, &model, &cfg, Parallelism::new(2)).expect("campaign");
    assert!(
        leakage.max_abs_t() < TVLA_THRESHOLD,
        "identical classes must not be distinguishable: max |t| = {}",
        leakage.max_abs_t()
    );
}

/// Fixed-vs-fixed campaigns honor the engine's determinism contract:
/// byte-identical at 1/2/8 worker threads.
#[test]
fn fixed_vs_fixed_byte_identical_across_threads() {
    let design = generators::iscas_c17();
    let model = PowerModel::default();
    let (v1, v2) = c17_vectors();
    let cfg = CampaignConfig::new(900, 900, 13)
        .with_fixed_vector(v1)
        .fixed_vs_fixed(v2);
    let reference = assess_parallel(&design, &model, &cfg, Parallelism::new(1)).expect("campaign");
    for threads in [2, 8] {
        let run =
            assess_parallel(&design, &model, &cfg, Parallelism::new(threads)).expect("campaign");
        for id in design.ids() {
            assert_eq!(
                reference.result(id).t.to_bits(),
                run.result(id).t.to_bits(),
                "gate {id} at {threads} threads"
            );
        }
    }
}

/// Adaptive stopping runs on fixed-vs-fixed campaigns unchanged: both
/// deterministic classes resolve quickly, and the early-stopped verdict
/// matches the full run's.
#[test]
fn fixed_vs_fixed_supports_adaptive_stopping() {
    let design = generators::iscas_c17();
    let model = PowerModel::default();
    let (v1, v2) = c17_vectors();
    // Seed 11: every null gate falls inside the late-look margins, so the
    // run stops early (most seeds do; a few park a null gate in the
    // undecided band and legitimately spend the budget).
    let cfg = CampaignConfig::new(6000, 6000, 11)
        .with_fixed_vector(v1)
        .fixed_vs_fixed(v2);
    let a = assess_adaptive(
        &design,
        &model,
        &cfg,
        Parallelism::new(2),
        &SequentialConfig::default(),
    )
    .expect("campaign");
    let full = assess_parallel(&design, &model, &cfg, Parallelism::new(2)).expect("campaign");
    for id in design.ids() {
        assert_eq!(
            a.leakage.abs_t(id) > TVLA_THRESHOLD,
            full.abs_t(id) > TVLA_THRESHOLD,
            "verdict flip at gate {id}"
        );
    }
    assert!(
        a.stats.stopped_early,
        "two deterministic classes converge fast: {:?}",
        a.stats
    );
    assert!(a.stats.traces_used() < cfg.n_fixed + cfg.n_random);
}

/// Bivariate smoke on a small netlist: dense samples from the *parallel*
/// collector feed the second-order sweep; the shared-mask pair leaks
/// bivariately while first-order stays silent, and the sweep is ordered by
/// descending |t|.
#[test]
fn bivariate_sweep_smoke_on_small_netlist() {
    let src = "
module m (a, m0, y0, y1, y2);
  input a;
  mask_input m0;
  output y0, y1, y2;
  xor g0 (y0, a, m0);
  buf g1 (y1, m0);
  not g2 (y2, m0);
endmodule";
    let design = polaris_netlist::parse_netlist(src).unwrap();
    let model = PowerModel::default().with_noise(0.05);
    let cfg = CampaignConfig::new(3000, 3000, 7).with_fixed_vector(vec![true]);

    // First order: every cell is masked and silent.
    let first = assess_parallel(&design, &model, &cfg, Parallelism::new(4)).expect("campaign");
    for id in design.cell_ids() {
        assert!(
            first.abs_t(id) < TVLA_THRESHOLD,
            "cell {id} should be first-order clean: {:.2}",
            first.abs_t(id)
        );
    }

    // Second order via the parallel dense collector.
    let samples = collect_gate_samples_parallel(&design, &model, &cfg, Parallelism::new(4))
        .expect("campaign");
    let cells = design.cell_ids();
    let sweep = bivariate_sweep(&samples, &cells).expect("pairs in range");
    assert_eq!(sweep.len(), cells.len() * (cells.len() - 1) / 2);
    for w in sweep.windows(2) {
        assert!(w[0].2.t.abs() >= w[1].2.t.abs(), "sweep must be sorted");
    }
    // The xor shares its mask with the buf/not gates: the top pair fails.
    assert!(
        sweep[0].2.t.abs() > TVLA_THRESHOLD,
        "shared-mask pair must leak bivariately: |t2| = {:.2}",
        sweep[0].2.t.abs()
    );
}
