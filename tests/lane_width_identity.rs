//! Lane-width identity contract of the multi-word campaign engine (ISSUE 6
//! acceptance): every random stream is keyed per 64-lane word, so the lane
//! width `W ∈ {1, 2, 4, 8}` is a pure throughput knob — campaign outcomes
//! are **byte-identical at every width**, at every thread count, through
//! adaptive stopping, and through the distributed shard-state merge.

use polaris_netlist::generators;
use polaris_sim::campaign::{
    collect_gate_samples_parallel, fold_shard_states, run_shard_states, shard_grid,
};
use polaris_sim::{CampaignConfig, GateSamples, Parallelism, PowerModel};
use polaris_tvla::{assess_adaptive, assess_parallel, SequentialConfig, WelchAccumulator};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Welch t-statistics are byte-identical at every (lane width, thread
/// count) combination, including trace counts that leave partial batches
/// at every width.
#[test]
fn assessment_byte_identical_at_every_width_and_thread_count() {
    let design = generators::iscas_like("c432", 1, 5).expect("known design");
    let model = PowerModel::default();
    // 1300/700: neither class is a multiple of 512, 256, or 128 — every
    // width sees a trailing partial batch.
    let cfg = CampaignConfig::new(1300, 700, 23);

    let reference = assess_parallel(
        &design,
        &model,
        &cfg,
        Parallelism::new(1).with_lane_words(1),
    )
    .expect("campaign");

    for width in WIDTHS {
        for threads in [1, 2, 8] {
            let par = Parallelism::new(threads).with_lane_words(width);
            let leakage = assess_parallel(&design, &model, &cfg, par).expect("campaign");
            for id in design.ids() {
                let (a, b) = (reference.result(id), leakage.result(id));
                assert_eq!(
                    a.t.to_bits(),
                    b.t.to_bits(),
                    "gate {id}: t at width {width}, {threads} threads"
                );
                assert_eq!(
                    a.dof.to_bits(),
                    b.dof.to_bits(),
                    "gate {id}: dof at width {width}, {threads} threads"
                );
            }
        }
    }
}

/// The raw trace stream — every sample of every gate, in order — is
/// bit-identical at every lane width.
#[test]
fn dense_samples_byte_identical_at_every_width() {
    let design = generators::iscas_c17();
    let model = PowerModel::default();
    let cfg = CampaignConfig::new(700, 333, 9);
    let reference = collect_gate_samples_parallel(
        &design,
        &model,
        &cfg,
        Parallelism::new(1).with_lane_words(1),
    )
    .expect("campaign");
    for width in WIDTHS {
        for threads in [1, 2] {
            let par = Parallelism::new(threads).with_lane_words(width);
            let samples =
                collect_gate_samples_parallel(&design, &model, &cfg, par).expect("campaign");
            for id in design.ids() {
                assert_eq!(
                    reference.fixed(id),
                    samples.fixed(id),
                    "gate {id}: fixed at width {width}, {threads} threads"
                );
                assert_eq!(
                    reference.random(id),
                    samples.random(id),
                    "gate {id}: random at width {width}, {threads} threads"
                );
            }
        }
    }
}

/// Adaptive sequential stopping lands on the same stop round with the same
/// statistics at every lane width — an early-stopped run is the same exact
/// prefix no matter how wide the simulator batches.
#[test]
fn adaptive_stop_is_width_invariant() {
    let design = generators::iscas_c17();
    let model = PowerModel::default();
    let cfg = CampaignConfig::new(6000, 6000, 11);
    let seq = SequentialConfig::default();

    let reference = assess_adaptive(
        &design,
        &model,
        &cfg,
        Parallelism::new(1).with_lane_words(1),
        &seq,
    )
    .expect("campaign");
    assert!(
        reference.stats.stopped_early,
        "the fixture must stop early: {:?}",
        reference.stats
    );

    for width in [2, 4, 8] {
        for threads in [1, 8] {
            let par = Parallelism::new(threads).with_lane_words(width);
            let run = assess_adaptive(&design, &model, &cfg, par, &seq).expect("campaign");
            assert_eq!(
                run.stats, reference.stats,
                "stop stats at width {width}, {threads} threads"
            );
            for id in design.ids() {
                assert_eq!(
                    run.leakage.result(id).t.to_bits(),
                    reference.leakage.result(id).t.to_bits(),
                    "gate {id}: t at width {width}, {threads} threads"
                );
            }
        }
    }
}

/// The distributed path: shard states computed at different lane widths on
/// different "machines" (a 2-part split of the shard grid) fold into the
/// same central accumulator, byte for byte.
#[test]
fn two_part_distributed_merge_is_width_invariant() {
    let design = generators::iscas_c17();
    let model = PowerModel::default();
    let cfg = CampaignConfig::new(900, 900, 77);
    let n_shards = shard_grid(&cfg).len();
    assert!(n_shards >= 2, "fixture must span multiple shards");
    let cut = n_shards / 2;

    let fold = |w_left: usize, w_right: usize| -> WelchAccumulator {
        let left: Vec<WelchAccumulator> = run_shard_states(
            &design,
            &model,
            &cfg,
            Parallelism::new(1).with_lane_words(w_left),
            0..cut,
        )
        .expect("campaign");
        let right: Vec<WelchAccumulator> = run_shard_states(
            &design,
            &model,
            &cfg,
            Parallelism::new(2).with_lane_words(w_right),
            cut..n_shards,
        )
        .expect("campaign");
        fold_shard_states(left.into_iter().chain(right))
    };

    let reference = fold(1, 1).leakage();
    // Heterogeneous widths across the two halves: a fleet where machines
    // pick different SIMD widths still folds to the same bytes.
    for (w_left, w_right) in [(2, 2), (4, 4), (8, 8), (1, 8), (8, 2)] {
        let merged = fold(w_left, w_right).leakage();
        for id in design.ids() {
            assert_eq!(
                reference.result(id).t.to_bits(),
                merged.result(id).t.to_bits(),
                "gate {id}: widths ({w_left}, {w_right})"
            );
        }
    }

    // And the dense stream survives the same split.
    let dense = |w_left: usize, w_right: usize| -> GateSamples {
        let left: Vec<GateSamples> = run_shard_states(
            &design,
            &model,
            &cfg,
            Parallelism::new(1).with_lane_words(w_left),
            0..cut,
        )
        .expect("campaign");
        let right: Vec<GateSamples> = run_shard_states(
            &design,
            &model,
            &cfg,
            Parallelism::new(1).with_lane_words(w_right),
            cut..n_shards,
        )
        .expect("campaign");
        fold_shard_states(left.into_iter().chain(right))
    };
    let ref_samples = dense(1, 1);
    let wide = dense(8, 2);
    for id in design.ids() {
        assert_eq!(ref_samples.fixed(id), wide.fixed(id), "gate {id}: fixed");
        assert_eq!(ref_samples.random(id), wide.random(id), "gate {id}: random");
    }
}
