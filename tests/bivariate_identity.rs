//! Byte-identity of the streaming bivariate engine across every execution
//! shape: the per-pair t statistics of one campaign must carry the *same
//! bits* whether the co-moments stream through 1, 2, or 8 worker threads,
//! 1- or 8-word SIMD lanes, a dense two-pass sweep, a 2-worker distributed
//! split, or a fleet job on a shared pool. The engine's determinism story is
//! a shared computation DAG (fixed shard grid, canonical ascending fold) —
//! these tests pin that the bivariate sink joined it.

use polaris_dist::{execute_part_with, merge_parts};
use polaris_netlist::{generators, GateId, Netlist};
use polaris_sim::fleet::{run_fleet, FleetJob};
use polaris_sim::{run_campaign_parallel_with, CampaignConfig, Parallelism, PowerModel};
use polaris_tvla::{all_pairs, bivariate_t, PairAccumulator};

fn design() -> Netlist {
    generators::iscas_c17()
}

fn campaign() -> CampaignConfig {
    // 600 + 600 traces span several 256-trace shards per class, so thread
    // counts, lane widths, and part splits all genuinely cut the grid.
    CampaignConfig::new(600, 600, 23)
}

fn pair_list(n: &Netlist) -> Vec<(u32, u32)> {
    all_pairs(&n.cell_ids())
}

/// The (t, dof) bit patterns of a streaming campaign at the given
/// parallelism, in pair-list order.
fn streaming_bits(
    n: &Netlist,
    cfg: &CampaignConfig,
    par: Parallelism,
    pairs: &[(u32, u32)],
) -> Vec<(u64, u64)> {
    let acc: PairAccumulator =
        run_campaign_parallel_with(n, &PowerModel::default(), cfg, par, || {
            PairAccumulator::for_pairs(pairs.to_vec())
        })
        .expect("campaign");
    acc.results()
        .iter()
        .map(|(_, _, r)| (r.t.to_bits(), r.dof.to_bits()))
        .collect()
}

#[test]
fn streaming_sweep_is_bit_identical_at_any_thread_count_and_lane_width() {
    let n = design();
    let cfg = campaign();
    let pairs = pair_list(&n);
    let reference = streaming_bits(&n, &cfg, Parallelism::sequential(), &pairs);
    assert!(!reference.is_empty());
    for threads in [1usize, 2, 8] {
        for lane_words in [1usize, 8] {
            let par = Parallelism::new(threads).with_lane_words(lane_words);
            assert_eq!(
                streaming_bits(&n, &cfg, par, &pairs),
                reference,
                "{threads} threads x {lane_words} lane words"
            );
        }
    }
}

#[test]
fn streaming_sweep_matches_the_dense_two_pass_engine_bit_for_bit() {
    let n = design();
    let cfg = campaign();
    let pairs = pair_list(&n);
    let streaming = streaming_bits(&n, &cfg, Parallelism::new(4), &pairs);

    // Dense engine: every trace stored, then two passes per pair — chunked
    // through the same computation DAG, so the bits must agree exactly.
    let samples = polaris_sim::campaign::collect_gate_samples_parallel(
        &n,
        &PowerModel::default(),
        &cfg,
        Parallelism::new(2),
    )
    .expect("campaign");
    let dense: Vec<(u64, u64)> = pairs
        .iter()
        .map(|&(a, b)| {
            let r = bivariate_t(&samples, GateId::new(a as usize), GateId::new(b as usize))
                .expect("pairs in range");
            (r.t.to_bits(), r.dof.to_bits())
        })
        .collect();
    assert_eq!(streaming, dense);
}

#[test]
fn distributed_split_folds_bit_identically_at_any_partitioning() {
    let n = design();
    let cfg = campaign();
    let pairs = pair_list(&n);
    let model = PowerModel::default();
    let reference = streaming_bits(&n, &cfg, Parallelism::sequential(), &pairs);

    for parts in [1usize, 2, 3] {
        let files: Vec<Vec<u8>> = (0..parts)
            .map(|i| {
                execute_part_with(&n, &model, &cfg, Parallelism::new(2), i, parts, || {
                    PairAccumulator::for_pairs(pairs.clone())
                })
                .expect("part executes")
            })
            .collect();
        let merged =
            merge_parts::<PairAccumulator>(files.iter().map(Vec::as_slice), None).expect("merges");
        let bits: Vec<(u64, u64)> = merged
            .state
            .results()
            .iter()
            .map(|(_, _, r)| (r.t.to_bits(), r.dof.to_bits()))
            .collect();
        assert_eq!(bits, reference, "{parts}-worker split");
    }
}

#[test]
fn fleet_pair_job_matches_its_standalone_run() {
    let n = design();
    let cfg = campaign();
    let pairs = pair_list(&n);
    let model = PowerModel::default();
    let reference = streaming_bits(&n, &cfg, Parallelism::sequential(), &pairs);

    // A pair job rides the fleet's sink-factory hook: same factory, same
    // grid, same canonical fold — mid-fleet scheduling must not change bits.
    for threads in [1usize, 3] {
        let filler_cfg = CampaignConfig::new(300, 300, 5);
        let job_pairs = pairs.clone();
        let jobs = vec![
            FleetJob::<PairAccumulator>::new(&n, &model, cfg.clone())
                .with_sink_factory(move || PairAccumulator::for_pairs(job_pairs.clone())),
            FleetJob::<PairAccumulator>::new(&n, &model, filler_cfg)
                .with_sink_factory(|| PairAccumulator::for_pairs(vec![(0, 1)])),
        ];
        let outcomes = run_fleet(jobs, Parallelism::new(threads)).expect("fleet");
        let bits: Vec<(u64, u64)> = outcomes[0]
            .sink
            .results()
            .iter()
            .map(|(_, _, r)| (r.t.to_bits(), r.dof.to_bits()))
            .collect();
        assert_eq!(bits, reference, "{threads}-thread fleet");
    }
}
