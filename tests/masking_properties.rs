//! Property-based tests: masking transforms preserve function on arbitrary
//! generated netlists, and netlist text round-trips.

use proptest::prelude::*;

use polaris_masking::{apply_masking, MaskingStyle};
use polaris_netlist::transform::decompose;
use polaris_netlist::{GateId, GateKind, Netlist};
use polaris_sim::Simulator;

/// Strategy: a random valid combinational netlist with `n_inputs` inputs and
/// up to `max_gates` random 1–3 input gates, all outputs bound.
fn arb_netlist(n_inputs: usize, max_gates: usize) -> impl Strategy<Value = Netlist> {
    let kinds = prop::sample::select(vec![
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Mux,
    ]);
    let gate_specs = prop::collection::vec((kinds, any::<u64>()), 1..max_gates);
    gate_specs.prop_map(move |specs| {
        let mut n = Netlist::new("prop");
        let mut signals: Vec<GateId> = (0..n_inputs)
            .map(|i| n.add_input(format!("i{i}")))
            .collect();
        for (idx, (kind, pick)) in specs.into_iter().enumerate() {
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                GateKind::Mux => 3,
                _ => 2,
            };
            let fanin: Vec<GateId> = (0..arity)
                .map(|k| {
                    let j = ((pick >> (8 * k)) as usize) % signals.len();
                    signals[j]
                })
                .collect();
            let g = n
                .add_gate(kind, format!("g{idx}"), &fanin)
                .expect("fanin ids exist");
            signals.push(g);
        }
        // Bind the last few signals as outputs so nothing is trivially dead.
        let outs = signals.len().min(4);
        for (i, &s) in signals.iter().rev().take(outs).enumerate() {
            n.add_output(format!("o{i}"), s).expect("valid output");
        }
        n
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trichina-masking any subset of gates never changes the function.
    #[test]
    fn masking_preserves_function(
        netlist in arb_netlist(5, 24),
        subset_seed in any::<u64>(),
        stimulus in prop::collection::vec(any::<bool>(), 5),
        mask_bits in any::<u64>(),
    ) {
        let (norm, _) = decompose(&netlist).expect("decompose succeeds");
        let cells = norm.cell_ids();
        let targets: Vec<GateId> = cells
            .iter()
            .enumerate()
            .filter(|(i, _)| (subset_seed >> (i % 64)) & 1 == 1)
            .map(|(_, &id)| id)
            .collect();
        let masked = apply_masking(&norm, &targets, MaskingStyle::Trichina)
            .expect("masking succeeds");

        let sim_o = Simulator::new(&norm).expect("compiles");
        let sim_m = Simulator::new(&masked.netlist).expect("compiles");
        let masks: Vec<bool> = (0..masked.netlist.mask_inputs().len())
            .map(|i| (mask_bits >> (i % 64)) & 1 == 1)
            .collect();
        let out_o = sim_o.eval_bool(&stimulus, &[]).expect("widths ok");
        let out_m = sim_m.eval_bool(&stimulus, &masks).expect("widths ok");
        prop_assert_eq!(out_o, out_m);
    }

    /// Decomposition itself preserves function.
    #[test]
    fn decompose_preserves_function(
        netlist in arb_netlist(4, 20),
        stimulus in prop::collection::vec(any::<bool>(), 4),
    ) {
        let (norm, _) = decompose(&netlist).expect("decompose succeeds");
        let sim_o = Simulator::new(&netlist).expect("compiles");
        let sim_n = Simulator::new(&norm).expect("compiles");
        prop_assert_eq!(
            sim_o.eval_bool(&stimulus, &[]).expect("widths ok"),
            sim_n.eval_bool(&stimulus, &[]).expect("widths ok")
        );
    }

    /// Constant propagation preserves function on netlists salted with
    /// constants, and never grows the design.
    #[test]
    fn constant_propagation_preserves_function(
        netlist in arb_netlist(4, 20),
        stimulus in prop::collection::vec(any::<bool>(), 4),
    ) {
        use polaris_netlist::transform::propagate_constants;
        // Salt: rebuild with two constants appended to the signal pool by
        // XOR-ing them into the first output.
        let mut salted = netlist.clone();
        let one = salted.add_gate(GateKind::Const1, "salt1", &[]).expect("valid");
        let zero = salted.add_gate(GateKind::Const0, "salt0", &[]).expect("valid");
        let first_out = netlist.outputs()[0].1;
        let x1 = salted.add_gate(GateKind::Xor, "saltx1", &[first_out, one]).expect("valid");
        let x2 = salted.add_gate(GateKind::Xor, "saltx2", &[x1, one]).expect("valid");
        let a1 = salted.add_gate(GateKind::Or, "salto", &[x2, zero]).expect("valid");
        salted.add_output("salted", a1).expect("valid");

        let (folded, _) = propagate_constants(&salted).expect("propagation succeeds");
        let sim_o = Simulator::new(&salted).expect("compiles");
        let sim_f = Simulator::new(&folded).expect("compiles");
        prop_assert_eq!(
            sim_o.eval_bool(&stimulus, &[]).expect("widths ok"),
            sim_f.eval_bool(&stimulus, &[]).expect("widths ok")
        );
        prop_assert!(folded.gate_count() <= salted.gate_count() + 2);
    }

    /// The netlist writer's output re-parses to a design with identical
    /// simulation behaviour.
    #[test]
    fn netlist_text_roundtrip(
        netlist in arb_netlist(4, 16),
        stimulus in prop::collection::vec(any::<bool>(), 4),
    ) {
        let text = polaris_netlist::write_netlist(&netlist);
        let reparsed = polaris_netlist::parse_netlist(&text).expect("writer output parses");
        let sim_a = Simulator::new(&netlist).expect("compiles");
        let sim_b = Simulator::new(&reparsed).expect("compiles");
        prop_assert_eq!(
            sim_a.eval_bool(&stimulus, &[]).expect("widths ok"),
            sim_b.eval_bool(&stimulus, &[]).expect("widths ok")
        );
    }

    /// Second-order ISW masking (3 shares, recombined at each composite
    /// boundary) computes the same outputs as the original netlist for
    /// random input vectors.
    #[test]
    fn isw_masking_preserves_function(
        netlist in arb_netlist(5, 20),
        subset_seed in any::<u64>(),
        stimulus in prop::collection::vec(any::<bool>(), 5),
        mask_bits in any::<u64>(),
    ) {
        let (norm, _) = decompose(&netlist).expect("decompose succeeds");
        let cells = norm.cell_ids();
        let targets: Vec<GateId> = cells
            .iter()
            .enumerate()
            .filter(|(i, _)| (subset_seed >> (i % 64)) & 1 == 1)
            .map(|(_, &id)| id)
            .collect();
        let masked = apply_masking(&norm, &targets, MaskingStyle::IswOrder2)
            .expect("masking succeeds");

        let sim_o = Simulator::new(&norm).expect("compiles");
        let sim_m = Simulator::new(&masked.netlist).expect("compiles");
        let masks: Vec<bool> = (0..masked.netlist.mask_inputs().len())
            .map(|i| (mask_bits >> (i % 64)) & 1 == 1)
            .collect();
        let out_o = sim_o.eval_bool(&stimulus, &[]).expect("widths ok");
        let out_m = sim_m.eval_bool(&stimulus, &masks).expect("widths ok");
        prop_assert_eq!(out_o, out_m);
    }

    /// DOM masking preserves function once its register stages settle: the
    /// masked (now sequential) design, clocked until every composite's
    /// cross-domain register has propagated, recombines its share domains
    /// to the original combinational outputs.
    #[test]
    fn dom_masking_preserves_function_after_settling(
        netlist in arb_netlist(4, 12),
        subset_seed in any::<u64>(),
        stimulus in prop::collection::vec(any::<bool>(), 4),
        mask_bits in any::<u64>(),
    ) {
        let (norm, _) = decompose(&netlist).expect("decompose succeeds");
        let cells = norm.cell_ids();
        let targets: Vec<GateId> = cells
            .iter()
            .enumerate()
            .filter(|(i, _)| (subset_seed >> (i % 64)) & 1 == 1)
            .map(|(_, &id)| id)
            .collect();
        let masked = apply_masking(&norm, &targets, MaskingStyle::Dom)
            .expect("masking succeeds");

        let sim_o = Simulator::new(&norm).expect("compiles");
        let out_o = sim_o.eval_bool(&stimulus, &[]).expect("widths ok");

        // Hold the inputs stable and clock until the deepest chain of DOM
        // registers (at most one per original cell) has flushed through.
        let sim_m = Simulator::new(&masked.netlist).expect("compiles");
        let data: Vec<u64> = stimulus.iter().map(|&v| if v { !0 } else { 0 }).collect();
        let masks: Vec<u64> = (0..masked.netlist.mask_inputs().len())
            .map(|i| if (mask_bits >> (i % 64)) & 1 == 1 { !0u64 } else { 0 })
            .collect();
        let mut st = sim_m.zero_state();
        sim_m.eval(&mut st, &data, &masks);
        for _ in 0..cells.len() {
            sim_m.clock(&mut st);
            sim_m.eval(&mut st, &data, &masks);
        }
        let out_m: Vec<bool> = masked
            .netlist
            .outputs()
            .iter()
            .map(|(_, driver)| st.value(*driver) & 1 == 1)
            .collect();
        prop_assert_eq!(out_o, out_m);
    }

    /// Masking bookkeeping invariants hold for arbitrary subsets.
    #[test]
    fn masking_bookkeeping_invariants(
        netlist in arb_netlist(5, 20),
        subset_seed in any::<u64>(),
    ) {
        let (norm, _) = decompose(&netlist).expect("decompose succeeds");
        let cells = norm.cell_ids();
        let targets: Vec<GateId> = cells
            .iter()
            .enumerate()
            .filter(|(i, _)| (subset_seed >> (i % 64)) & 1 == 1)
            .map(|(_, &id)| id)
            .collect();
        let masked = apply_masking(&norm, &targets, MaskingStyle::Trichina)
            .expect("masking succeeds");
        // Origin covers exactly the new netlist.
        prop_assert_eq!(masked.origin.len(), masked.netlist.gate_count());
        // All target groups are nonempty and grew.
        for &t in &targets {
            prop_assert!(masked.gates_for(t).len() > 1, "gate {} did not expand", t);
        }
        // Mask-bit accounting: 3 per 2-input target, 1 per unary target.
        let expected: usize = targets
            .iter()
            .map(|&t| if norm.gate(t).fanin().len() == 1 { 1 } else { 3 })
            .sum();
        prop_assert_eq!(masked.added_mask_bits, expected);
        masked.netlist.validate().expect("masked netlist valid");
    }
}
