//! Recorder neutrality (ISSUE 9 acceptance): instrumentation lives
//! strictly outside the fold path, so a campaign with recording **on** is
//! byte-identical to the same campaign with recording **off** — at every
//! thread count, every lane width, and under adaptive stopping (same stop
//! round, same traces, same statistics bits). The recorded trace itself
//! must survive the JSONL round trip and carry the event kinds the CI
//! smoke gate requires.

use std::sync::Arc;

use polaris_netlist::{generators, Netlist};
use polaris_obs::{parse_trace, JsonlRecorder, Payload, TraceSummary};
use polaris_sim::{
    run_campaign_parallel, run_campaign_traced, CampaignConfig, NeverStop, Parallelism, PowerModel,
};
use polaris_tvla::{
    campaign_outcome_adaptive, campaign_outcome_adaptive_traced, SequentialConfig, WelchAccumulator,
};

fn design() -> Netlist {
    generators::iscas_like("c432", 1, 7).expect("generator knows c432")
}

/// Per-gate (t, dof) bit patterns of a Welch campaign outcome.
fn t_bits(design: &Netlist, acc: &WelchAccumulator) -> Vec<(u64, u64)> {
    let leakage = acc.leakage();
    design
        .ids()
        .map(|id| {
            let r = leakage.result(id);
            (r.t.to_bits(), r.dof.to_bits())
        })
        .collect()
}

/// Recording on vs off is byte-identical across threads {1, 2, 8} ×
/// lane words {1, 8} — and every combination equals the untraced
/// `run_campaign_parallel` reference.
#[test]
fn recording_is_byte_identical_across_threads_and_lane_widths() {
    let netlist = design();
    let model = PowerModel::default();
    let config = CampaignConfig::new(700, 700, 11);
    let reference = {
        let acc: WelchAccumulator =
            run_campaign_parallel(&netlist, &model, &config, Parallelism::new(1))
                .expect("campaign runs");
        t_bits(&netlist, &acc)
    };
    for threads in [1usize, 2, 8] {
        for lane_words in [1usize, 8] {
            let par = Parallelism::new(threads).with_lane_words(lane_words);
            let off = run_campaign_traced::<WelchAccumulator, _>(
                &netlist,
                &model,
                &config,
                par,
                usize::MAX,
                &mut NeverStop,
                &polaris_obs::NullRecorder,
            )
            .expect("campaign runs");
            let recorder = JsonlRecorder::new();
            let on = run_campaign_traced::<WelchAccumulator, _>(
                &netlist,
                &model,
                &config,
                par,
                usize::MAX,
                &mut NeverStop,
                &recorder,
            )
            .expect("campaign runs");
            assert!(
                !recorder.is_empty(),
                "the enabled recorder saw no events ({threads}t/{lane_words}w)"
            );
            let off_bits = t_bits(&netlist, &off.sink);
            let on_bits = t_bits(&netlist, &on.sink);
            assert_eq!(
                off_bits, on_bits,
                "recording changed campaign bits at {threads} threads, {lane_words} lane words"
            );
            assert_eq!(
                reference, on_bits,
                "traced campaign differs from the untraced reference at \
                 {threads} threads, {lane_words} lane words"
            );
            assert_eq!(off.stats, on.stats);
        }
    }
}

/// The adaptive audit trail is an observer: with recording on, the
/// stopping rule stops at the same round with the same trace counts and
/// statistics bits as with recording off, at 1, 2 and 8 threads.
#[test]
fn adaptive_stopping_is_unchanged_by_the_audit_trail() {
    let netlist = design();
    let model = PowerModel::default();
    let config = CampaignConfig::new(2_000, 2_000, 11);
    let seq = SequentialConfig::with_confidence(0.95);
    for threads in [1usize, 2, 8] {
        let par = Parallelism::new(threads);
        let off =
            campaign_outcome_adaptive(&netlist, &model, &config, par, &seq).expect("campaign runs");
        let recorder = Arc::new(JsonlRecorder::new());
        let on = campaign_outcome_adaptive_traced(
            &netlist,
            &model,
            &config,
            par,
            &seq,
            recorder.clone(),
        )
        .expect("campaign runs");
        assert_eq!(
            off.stats, on.stats,
            "stop decision changed at {threads} threads"
        );
        assert_eq!(
            t_bits(&netlist, &off.sink),
            t_bits(&netlist, &on.sink),
            "audit trail changed statistics bits at {threads} threads"
        );
        // The trace itself must round-trip and carry the smoke-gate kinds.
        let jsonl = recorder.to_jsonl();
        let events = parse_trace(&jsonl).expect("recorded trace parses");
        assert_eq!(events.len(), jsonl.lines().count());
        let summary = TraceSummary::build(&events);
        assert!(
            summary.has_adaptive_kinds(),
            "adaptive trace is missing shard_span/round_checkpoint/stop_audit"
        );
        // Every recorded look matches the outcome. The engine consults the
        // rule *between* rounds, so an early stop leaves its final look at
        // the stop round, while a budget-exhausted campaign's last look
        // precedes the final round.
        let last = summary.checkpoints.last().expect("at least one look");
        if on.stats.stopped_early {
            assert_eq!(last.round, on.stats.rounds as u64);
            assert_eq!(
                last.fixed_traces + last.random_traces,
                (on.stats.fixed_traces + on.stats.random_traces) as u64
            );
            assert!(last.stop);
        } else {
            assert_eq!(last.round, on.stats.rounds as u64 - 1);
            assert!(!last.stop);
        }
        // The audit rows cover exactly the rule's scoped gates.
        assert_eq!(summary.final_audit.len(), netlist.cell_ids().len());
    }
}

/// A single-threaded recorded campaign accounts for its own wall time:
/// the rng/simulate/accumulate/fold phase sums cover ≥ 90% of the
/// campaign_end wall clock (one thread, one clock — nothing overlaps).
#[test]
fn single_threaded_phase_times_cover_the_campaign_wall_time() {
    let netlist = design();
    let model = PowerModel::default();
    let config = CampaignConfig::new(1_500, 1_500, 11);
    let recorder = JsonlRecorder::new();
    run_campaign_traced::<WelchAccumulator, _>(
        &netlist,
        &model,
        &config,
        Parallelism::new(1),
        usize::MAX,
        &mut NeverStop,
        &recorder,
    )
    .expect("campaign runs");
    let events = parse_trace(&recorder.to_jsonl()).expect("trace parses");
    let summary = TraceSummary::build(&events);
    let coverage = summary
        .phase_coverage()
        .expect("campaign_end present in the trace");
    assert!(
        coverage > 0.90 && coverage <= 1.02,
        "phase coverage {coverage:.3} outside (0.90, 1.02]"
    );
    // The shard spans account for the full trace budget per population.
    let mut fixed = 0u64;
    let mut random = 0u64;
    for ev in &events {
        if let Payload::ShardSpan { pop, count, .. } = &ev.payload {
            match pop {
                polaris_obs::PopulationTag::Fixed => fixed += count,
                polaris_obs::PopulationTag::Random => random += count,
            }
        }
    }
    assert_eq!(fixed, 1_500);
    assert_eq!(random, 1_500);
}

/// The committed example trace (docs/traces/) stays parseable and its
/// per-phase breakdown sums to within 5% of the recorded wall time — the
/// artifact the README points readers at must not rot.
#[test]
fn committed_example_trace_summarizes_with_tight_phase_coverage() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/docs/traces/c432-adaptive.jsonl"
    );
    let text = std::fs::read_to_string(path).expect("committed example trace exists");
    let events = parse_trace(&text).expect("committed trace parses");
    let summary = TraceSummary::build(&events);
    assert!(summary.has_adaptive_kinds());
    let coverage = summary
        .phase_coverage()
        .expect("committed trace holds a finished campaign");
    assert!(
        (coverage - 1.0).abs() <= 0.05,
        "phase times sum to {:.1}% of wall time (acceptance bound: within 5%)",
        coverage * 100.0
    );
    assert!(!summary.checkpoints.is_empty());
    assert!(!summary.final_audit.is_empty());
}
