//! Determinism contract of the multi-design fleet scheduler (ISSUE 5
//! acceptance): every job of a fleet — whatever the mix, whatever the
//! worker count — is **byte-identical** to its standalone campaign run,
//! adaptive stop rounds included, and the fleet work queue never loses or
//! duplicates a shard.

use proptest::prelude::*;

use polaris::config::PolarisConfig;
use polaris::masking_flow::{baseline_outcome, baseline_outcomes_fleet};
use polaris::pipeline::{MaskBudget, PolarisPipeline};
use polaris_netlist::generators;
use polaris_netlist::transform::decompose;
use polaris_sim::campaign::{partition_shards, shard_grid, TRACES_PER_SHARD};
use polaris_sim::fleet::job_rounds;
use polaris_sim::{
    run_campaign_parallel, run_fleet, CampaignConfig, FleetJob, GateSamples, Parallelism,
    PowerModel,
};
use polaris_tvla::{
    adaptive_fleet_job, campaign_outcome_adaptive, SequentialConfig, WelchAccumulator,
};

fn t_bits(design: &polaris_netlist::Netlist, acc: &WelchAccumulator) -> Vec<(u64, u64)> {
    let leakage = acc.leakage();
    design
        .ids()
        .map(|id| {
            let r = leakage.result(id);
            (r.t.to_bits(), r.dof.to_bits())
        })
        .collect()
}

/// Acceptance criterion: a heterogeneous 3-job fleet — fixed-vs-random,
/// fixed-vs-fixed, and one adaptive job — is byte-identical per job to the
/// standalone runs at 1, 2, and 8 threads, including the adaptive job's
/// stop round.
#[test]
fn heterogeneous_three_job_fleet_byte_identical_at_1_2_8_threads() {
    let c17 = generators::iscas_c17();
    let c432 = generators::iscas_like("c432", 1, 5).expect("known design");
    let model = PowerModel::default();

    // Job 0: plain fixed-vs-random on c432 (uneven classes, partial shards).
    let fvr_cfg = CampaignConfig::new(1200, 700, 17);
    // Job 1: fixed-vs-fixed on c17 with explicit vectors.
    let fvf_cfg = CampaignConfig::new(900, 900, 3)
        .with_fixed_vector(vec![true, false, true, false, true])
        .fixed_vs_fixed(vec![false, true, false, true, false]);
    // Job 2: adaptive on c17 — the seed-11 fixture proven to stop early.
    let adaptive_cfg = CampaignConfig::new(6000, 6000, 11);
    let seq = SequentialConfig::default();

    // Standalone references.
    let solo_fvr: WelchAccumulator =
        run_campaign_parallel(&c432, &model, &fvr_cfg, Parallelism::new(2)).expect("campaign");
    let solo_fvf: WelchAccumulator =
        run_campaign_parallel(&c17, &model, &fvf_cfg, Parallelism::new(2)).expect("campaign");
    let solo_adaptive =
        campaign_outcome_adaptive(&c17, &model, &adaptive_cfg, Parallelism::new(2), &seq)
            .expect("campaign");
    assert!(
        solo_adaptive.stats.stopped_early,
        "the adaptive fixture must stop early: {:?}",
        solo_adaptive.stats
    );

    let ref_fvr = t_bits(&c432, &solo_fvr);
    let ref_fvf = t_bits(&c17, &solo_fvf);
    let ref_adaptive = t_bits(&c17, &solo_adaptive.sink);

    for threads in [1usize, 2, 8] {
        let jobs = vec![
            FleetJob::<WelchAccumulator>::new(&c432, &model, fvr_cfg.clone()),
            FleetJob::new(&c17, &model, fvf_cfg.clone()),
            adaptive_fleet_job(&c17, &model, adaptive_cfg.clone(), &seq),
        ];
        let outcomes = run_fleet(jobs, Parallelism::new(threads)).expect("fleet");
        assert_eq!(outcomes.len(), 3);

        assert_eq!(
            t_bits(&c432, &outcomes[0].sink),
            ref_fvr,
            "fixed-vs-random job at {threads} threads"
        );
        assert_eq!(outcomes[0].stats.fixed_traces, 1200);
        assert_eq!(outcomes[0].stats.random_traces, 700);

        assert_eq!(
            t_bits(&c17, &outcomes[1].sink),
            ref_fvf,
            "fixed-vs-fixed job at {threads} threads"
        );

        assert_eq!(
            outcomes[2].stats, solo_adaptive.stats,
            "adaptive stop round at {threads} threads"
        );
        assert_eq!(
            t_bits(&c17, &outcomes[2].sink),
            ref_adaptive,
            "adaptive job at {threads} threads"
        );
    }
}

/// An adaptive fleet job that cannot converge consumes its full budget and
/// equals the non-adaptive standalone campaign — mid-fleet, at any pool
/// size.
#[test]
fn non_converging_adaptive_fleet_job_matches_full_campaign() {
    let src = "
module m (a, m0, y);
  input a;
  mask_input m0;
  output y;
  xor g (y, a, m0);
endmodule";
    let masked = polaris_netlist::parse_netlist(src).expect("valid netlist");
    let c17 = generators::iscas_c17();
    let model = PowerModel::default();
    let cfg = CampaignConfig::new(1500, 1500, 7);
    let seq = SequentialConfig {
        alpha: 1e-13,
        ..SequentialConfig::default()
    };
    let full: WelchAccumulator =
        run_campaign_parallel(&masked, &model, &cfg, Parallelism::new(2)).expect("campaign");
    let jobs = vec![
        adaptive_fleet_job(&masked, &model, cfg.clone(), &seq),
        FleetJob::<WelchAccumulator>::new(&c17, &model, CampaignConfig::new(400, 400, 2)),
    ];
    let outcomes = run_fleet(jobs, Parallelism::new(4)).expect("fleet");
    assert!(!outcomes[0].stats.stopped_early);
    assert_eq!(outcomes[0].stats.fixed_traces, 1500);
    assert_eq!(t_bits(&masked, &outcomes[0].sink), t_bits(&masked, &full));
}

/// Satellite: a pre-folded baseline coming out of a fleet feeds
/// `mask_design_with_baseline` with bit-identical results to the solo
/// `mask_design` path (which folds its own baseline in-process).
#[test]
fn mask_with_fleet_baseline_matches_solo_mask_design() {
    let config = PolarisConfig {
        msize: 8,
        iterations: 3,
        max_traces: 250,
        n_estimators: 20,
        learning_rate: 0.5,
        adaptive: true,
        ..PolarisConfig::fast_profile(5)
    };
    let power = PowerModel::default();
    let training = vec![
        generators::iscas_like("c432", 1, 5).expect("known design"),
        generators::iscas_like("c499", 1, 6).expect("known design"),
    ];
    let trained = PolarisPipeline::new(config.clone())
        .train(&training, &power)
        .expect("training");

    let target = generators::iscas_c17();
    let (normalized, _) = decompose(&target).expect("valid design");

    // The fleet baseline must itself equal the solo baseline fold…
    let solo_baseline = baseline_outcome(&normalized, &config, &power).expect("baseline");
    let fleet_baselines =
        baseline_outcomes_fleet(std::slice::from_ref(&normalized), &config, &power)
            .expect("fleet baseline");
    assert_eq!(fleet_baselines.len(), 1);
    let fleet_baseline = fleet_baselines.into_iter().next().expect("one outcome");
    assert_eq!(fleet_baseline.stats, solo_baseline.stats);
    assert_eq!(
        t_bits(&normalized, &fleet_baseline.sink),
        t_bits(&normalized, &solo_baseline.sink)
    );

    // …and the reports built from each are identical in every statistical
    // field.
    let budget = MaskBudget::LeakyFraction(1.0);
    let solo = trained
        .mask_design(&target, &power, budget)
        .expect("solo mask");
    let via_fleet = trained
        .mask_design_with_baseline(&target, &power, budget, fleet_baseline)
        .expect("fleet-baseline mask");
    assert_eq!(via_fleet.masked_gates, solo.masked_gates);
    assert_eq!(via_fleet.scores, solo.scores);
    assert_eq!(via_fleet.before, solo.before);
    assert_eq!(via_fleet.after, solo.after);
    assert_eq!(via_fleet.after_grouped_abs_t, solo.after_grouped_abs_t);
    assert_eq!(via_fleet.campaign_fixed_traces, solo.campaign_fixed_traces);
    assert_eq!(
        via_fleet.campaign_random_traces,
        solo.campaign_random_traces
    );
    assert_eq!(via_fleet.stopped_early, solo.stopped_early);
    assert_eq!(
        via_fleet.before_map.abs_t_all(),
        solo.before_map.abs_t_all()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `partition_shards` round-trips for arbitrary grid/part counts: the
    /// ranges tile `0..n` contiguously (no lost or duplicated shards) and
    /// stay balanced to within one shard.
    #[test]
    fn partition_shards_roundtrips(n in 0usize..600, parts in 1usize..40) {
        let ranges = partition_shards(n, parts);
        prop_assert_eq!(ranges.len(), parts);
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next, "gap or overlap");
            prop_assert!(r.end >= r.start);
            next = r.end;
        }
        prop_assert_eq!(next, n, "must cover the whole grid");
        let sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
        let (min, max) = (
            *sizes.iter().min().expect("non-empty"),
            *sizes.iter().max().expect("non-empty"),
        );
        prop_assert!(max - min <= 1, "balanced: {:?}", sizes);
    }

    /// The fleet's round decomposition tiles every job grid contiguously at
    /// any checkpoint granularity — the queue enqueues exactly these ranges,
    /// so together with the in-order fold this is the no-loss/no-dup
    /// invariant of the scheduler's work accounting.
    #[test]
    fn job_rounds_tile_contiguously(n in 0usize..500, spr in 0usize..40) {
        let rounds = job_rounds(n, spr);
        let mut next = 0usize;
        for r in &rounds {
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end > r.start && r.end - r.start <= spr.max(1));
            next = r.end;
        }
        prop_assert_eq!(next, n);
        // Consistent with the standalone driver's planned_rounds count.
        prop_assert_eq!(rounds.len(), n.div_ceil(spr.max(1)));
    }

    /// Arbitrary fleets of small campaigns fold in canonical order: every
    /// job's dense collection equals its standalone run sample for sample,
    /// at an arbitrary worker count.
    #[test]
    fn random_fleets_fold_canonically(
        sizes in proptest::collection::vec((0usize..500, 0usize..500), 1..4),
        threads in 1usize..6,
        spr in 1usize..6,
    ) {
        let c17 = generators::iscas_c17();
        let model = PowerModel::default();
        let configs: Vec<CampaignConfig> = sizes
            .iter()
            .enumerate()
            .map(|(i, &(nf, nr))| CampaignConfig::new(nf, nr, i as u64 * 31 + 7))
            .collect();
        let jobs: Vec<FleetJob<GateSamples>> = configs
            .iter()
            .enumerate()
            .map(|(i, cfg)| {
                let job = FleetJob::new(&c17, &model, cfg.clone());
                // Mix round granularities: even jobs checkpoint, odd run
                // as one round.
                if i % 2 == 0 {
                    job.with_rule(polaris_sim::NeverStop, spr)
                } else {
                    job
                }
            })
            .collect();
        let outcomes = run_fleet(jobs, Parallelism::new(threads)).expect("fleet");
        for (cfg, outcome) in configs.iter().zip(outcomes) {
            let solo: GateSamples =
                run_campaign_parallel(&c17, &model, cfg, Parallelism::sequential())
                    .expect("campaign");
            for id in c17.ids() {
                prop_assert_eq!(outcome.sink.fixed(id), solo.fixed(id));
                prop_assert_eq!(outcome.sink.random(id), solo.random(id));
            }
            prop_assert_eq!(outcome.stats.fixed_traces, cfg.n_fixed);
            prop_assert_eq!(outcome.stats.random_traces, cfg.n_random);
            let n_shards = shard_grid(cfg).len();
            prop_assert!(outcome.stats.fixed_traces.div_ceil(TRACES_PER_SHARD)
                + outcome.stats.random_traces.div_ceil(TRACES_PER_SHARD) == n_shards);
        }
    }
}
