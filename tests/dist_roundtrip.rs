//! Property tests for the `polaris-dist` shard-state codecs: encoding is a
//! lossless bijection on accumulator state. For every sink kind,
//! `decode(encode(x))` carries exactly `x`'s bytes — pinned via the
//! `encode(decode(encode(x))) == encode(x)` identity — over arbitrary
//! accumulator contents, including empty shards and extreme moment values
//! (the floats are drawn from arbitrary *bit patterns*, so subnormals,
//! infinities, and NaN payloads are all exercised).

use proptest::prelude::*;

use polaris_dist::wire::Reader;
use polaris_dist::{decode_part, encode_part, PartHeader, ShardState};
use polaris_sim::GateSamples;
use polaris_tvla::trivariate::TRIPLE_MOMENTS_RAW_LEN;
use polaris_tvla::{
    CorrelationAccumulator, CpaAccumulator, PairAccumulator, PairMoments, StreamingMoments,
    TripleAccumulator, TripleMoments, WelchAccumulator,
};

/// Encode → decode → encode; asserts the two encodings are byte-identical
/// and returns the decoded value for extra checks.
fn round_trip<S: ShardState>(state: &S) -> S {
    let mut first = Vec::new();
    state.encode_body(&mut first);
    let mut r = Reader::new(&first);
    let decoded = S::decode_body(&mut r).expect("well-formed body decodes");
    assert_eq!(r.remaining(), 0, "decode must consume the whole body");
    let mut second = Vec::new();
    decoded.encode_body(&mut second);
    assert_eq!(first, second, "encode∘decode∘encode must be the identity");
    decoded
}

/// Arbitrary `f64` by bit pattern: covers normals, subnormals, ±0, ±∞, and
/// every NaN payload — the codec transports bits, so all must survive.
fn arb_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_moments() -> impl Strategy<Value = StreamingMoments> {
    (any::<u64>(), arb_f64(), arb_f64(), arb_f64(), arb_f64())
        .prop_map(|(n, mean, m2, m3, m4)| StreamingMoments::from_raw_parts(n, mean, m2, m3, m4))
}

fn arb_pair_moments() -> impl Strategy<Value = PairMoments> {
    (any::<u64>(), prop::collection::vec(arb_f64(), 8)).prop_map(|(n, f)| {
        PairMoments::from_raw_parts(n, [f[0], f[1], f[2], f[3], f[4], f[5], f[6], f[7]])
    })
}

fn arb_triple_moments() -> impl Strategy<Value = TripleMoments> {
    (
        any::<u64>(),
        prop::collection::vec(arb_f64(), TRIPLE_MOMENTS_RAW_LEN),
    )
        .prop_map(|(n, f)| {
            let mut parts = [0.0; TRIPLE_MOMENTS_RAW_LEN];
            parts.copy_from_slice(&f);
            TripleMoments::from_raw_parts(n, parts)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn welch_bodies_round_trip(
        moments in prop::collection::vec((arb_moments(), arb_moments()), 0..20),
    ) {
        let (fixed, random): (Vec<_>, Vec<_>) = moments.into_iter().unzip();
        let acc = WelchAccumulator::from_classes(fixed, random);
        let back = round_trip(&acc);
        let (f0, r0) = acc.classes();
        let (f1, r1) = back.classes();
        prop_assert_eq!(f0.len(), f1.len());
        for (a, b) in f0.iter().zip(f1).chain(r0.iter().zip(r1)) {
            let (n0, mean0, m20, m30, m40) = a.raw_parts();
            let (n1, mean1, m21, m31, m41) = b.raw_parts();
            prop_assert_eq!(n0, n1);
            prop_assert_eq!(mean0.to_bits(), mean1.to_bits());
            prop_assert_eq!(m20.to_bits(), m21.to_bits());
            prop_assert_eq!(m30.to_bits(), m31.to_bits());
            prop_assert_eq!(m40.to_bits(), m41.to_bits());
        }
    }

    #[test]
    fn gate_samples_round_trip(
        fixed in prop::collection::vec(prop::collection::vec(arb_f64(), 0..12), 0..8),
        random in prop::collection::vec(prop::collection::vec(arb_f64(), 0..12), 0..8),
    ) {
        // The two classes may disagree on gate count (one-population shards).
        let samples = GateSamples::from_classes(fixed.clone(), random.clone());
        let back = round_trip(&samples);
        let (f1, r1) = back.classes();
        prop_assert_eq!(fixed.len(), f1.len());
        prop_assert_eq!(random.len(), r1.len());
        for (a, b) in fixed.iter().zip(f1).chain(random.iter().zip(r1)) {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn cpa_bodies_round_trip(
        guesses in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(arb_f64(), 5)),
            0..16,
        ),
    ) {
        let per_guess: Vec<CorrelationAccumulator> = guesses
            .iter()
            .map(|(n, f)| CorrelationAccumulator::from_raw_parts(*n, f[0], f[1], f[2], f[3], f[4]))
            .collect();
        let acc = CpaAccumulator::from_guess_accumulators(per_guess);
        let back = round_trip(&acc);
        prop_assert_eq!(back.guess_accumulators().len(), guesses.len());
        for (a, (n, f)) in back.guess_accumulators().iter().zip(&guesses) {
            let (n1, mx, my, m2x, m2y, cxy) = a.raw_parts();
            prop_assert_eq!(n1, *n);
            for (got, want) in [mx, my, m2x, m2y, cxy].iter().zip(f) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn pair_bodies_round_trip(
        entries in prop::collection::vec(
            ((any::<u32>(), any::<u32>()), arb_pair_moments(), arb_pair_moments()),
            0..16,
        ),
    ) {
        let mut pairs = Vec::new();
        let mut fixed = Vec::new();
        let mut random = Vec::new();
        for (p, f, r) in entries {
            pairs.push(p);
            fixed.push(f);
            random.push(r);
        }
        let acc = PairAccumulator::from_parts(pairs.clone(), fixed.clone(), random.clone());
        let back = round_trip(&acc);
        prop_assert_eq!(back.pairs(), &pairs[..]);
        let (f1, r1) = back.class_moments();
        for (a, b) in fixed.iter().zip(f1).chain(random.iter().zip(r1)) {
            let (n0, parts0) = a.raw_parts();
            let (n1, parts1) = b.raw_parts();
            prop_assert_eq!(n0, n1);
            for (x, y) in parts0.iter().zip(&parts1) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn triple_bodies_round_trip(
        entries in prop::collection::vec(
            (
                (any::<u32>(), any::<u32>(), any::<u32>()),
                arb_triple_moments(),
                arb_triple_moments(),
            ),
            0..16,
        ),
    ) {
        let mut triples = Vec::new();
        let mut fixed = Vec::new();
        let mut random = Vec::new();
        for (t, f, r) in entries {
            triples.push(t);
            fixed.push(f);
            random.push(r);
        }
        let acc = TripleAccumulator::from_parts(triples.clone(), fixed.clone(), random.clone());
        let back = round_trip(&acc);
        prop_assert_eq!(back.triples(), &triples[..]);
        let (f1, r1) = back.class_moments();
        for (a, b) in fixed.iter().zip(f1).chain(random.iter().zip(r1)) {
            let (n0, parts0) = a.raw_parts();
            let (n1, parts1) = b.raw_parts();
            prop_assert_eq!(n0, n1);
            for (x, y) in parts0.iter().zip(&parts1) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn part_files_round_trip(
        shard_lo in 0u32..1000,
        states in prop::collection::vec(
            prop::collection::vec((arb_moments(), arb_moments()), 0..6),
            0..5,
        ),
        fingerprint in any::<u64>(),
    ) {
        // Whole-file identity, including empty parts (zero shards).
        let states: Vec<WelchAccumulator> = states
            .into_iter()
            .map(|ms| {
                let (fixed, random): (Vec<_>, Vec<_>) = ms.into_iter().unzip();
                WelchAccumulator::from_classes(fixed, random)
            })
            .collect();
        let shard_hi = shard_lo + states.len() as u32;
        let header = PartHeader {
            fingerprint,
            part_index: 0,
            part_count: 1,
            shard_lo,
            shard_hi,
            n_shards_total: shard_hi,
        };
        let encoded = encode_part(&header, &states);
        let (decoded_header, decoded_states) =
            decode_part::<WelchAccumulator>(&encoded).expect("valid part decodes");
        prop_assert_eq!(decoded_header, header);
        prop_assert_eq!(decoded_states.len(), states.len());
        let reencoded = encode_part(&header, &decoded_states);
        prop_assert_eq!(encoded, reencoded);
    }
}

/// Empty accumulators (an empty shard's snapshot) survive the wire exactly.
#[test]
fn empty_shard_states_round_trip() {
    round_trip(&WelchAccumulator::new());
    round_trip(&GateSamples::default());
    round_trip(&CpaAccumulator::new(0));
    let back = round_trip(&CpaAccumulator::new(3));
    assert_eq!(back.guess_accumulators().len(), 3);
    round_trip(&PairAccumulator::default());
    let back = round_trip(&PairAccumulator::for_pairs(vec![(0, 1), (1, 2)]));
    assert_eq!(back.pair_count(), 2);
    round_trip(&TripleAccumulator::default());
    let back = round_trip(&TripleAccumulator::for_triples(vec![(0, 1, 2), (1, 2, 3)]));
    assert_eq!(back.triple_count(), 2);
}
