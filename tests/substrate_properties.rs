//! Property tests over the substrate crates: simulator lane independence,
//! streaming-moment algebra, Welch symmetry, SHAP axioms, and format
//! round-trips.

use proptest::prelude::*;

use polaris_ml::adaboost::{AdaBoost, AdaBoostConfig};
use polaris_ml::{Classifier, Dataset, TreeEnsemble};
use polaris_netlist::{GateId, GateKind, Netlist};
use polaris_sim::Simulator;
use polaris_tvla::{welch_t, StreamingMoments};
use polaris_xai::tree_shap::tree_shap;

/// Random valid combinational netlist (shared with masking_properties, kept
/// local so each test file is self-contained).
fn arb_netlist(n_inputs: usize, max_gates: usize) -> impl Strategy<Value = Netlist> {
    let kinds = prop::sample::select(vec![
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Mux,
    ]);
    prop::collection::vec((kinds, any::<u64>()), 1..max_gates).prop_map(move |specs| {
        let mut n = Netlist::new("prop");
        let mut signals: Vec<GateId> = (0..n_inputs)
            .map(|i| n.add_input(format!("i{i}")))
            .collect();
        for (idx, (kind, pick)) in specs.into_iter().enumerate() {
            let arity = match kind {
                GateKind::Not => 1,
                GateKind::Mux => 3,
                _ => 2,
            };
            let fanin: Vec<GateId> = (0..arity)
                .map(|k| signals[((pick >> (8 * k)) as usize) % signals.len()])
                .collect();
            let g = n.add_gate(kind, format!("g{idx}"), &fanin).expect("valid");
            signals.push(g);
        }
        for (i, &s) in signals.iter().rev().take(3).enumerate() {
            n.add_output(format!("o{i}"), s).expect("valid");
        }
        n
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-parallel semantics: lane `l` of a 64-lane evaluation equals an
    /// independent single-lane evaluation of lane `l`'s inputs.
    #[test]
    fn simulator_lanes_are_independent(
        netlist in arb_netlist(6, 20),
        words in prop::collection::vec(any::<u64>(), 6),
        lane in 0usize..64,
    ) {
        let sim = Simulator::new(&netlist).expect("compiles");
        // Full-width evaluation.
        let mut wide = sim.zero_state();
        sim.eval(&mut wide, &words, &[]);
        // Single-lane evaluation of the same inputs.
        let lane_bits: Vec<u64> = words.iter().map(|w| (w >> lane) & 1).collect();
        let mut narrow = sim.zero_state();
        sim.eval(&mut narrow, &lane_bits, &[]);
        for (_, driver) in netlist.outputs() {
            prop_assert_eq!(
                (wide.value(*driver) >> lane) & 1,
                narrow.value(*driver) & 1
            );
        }
    }

    /// Zero-delay and unit-delay evaluation settle to identical values.
    #[test]
    fn delay_models_agree_on_settled_values(
        netlist in arb_netlist(5, 24),
        words in prop::collection::vec(any::<u64>(), 5),
    ) {
        let sim = Simulator::new(&netlist).expect("compiles");
        let mut zero = sim.zero_state();
        sim.eval(&mut zero, &words, &[]);
        let mut unit = sim.zero_state();
        sim.eval_unit_delay(&mut unit, &words, &[], |_, _| {});
        for id in netlist.ids() {
            prop_assert_eq!(zero.value(id), unit.value(id));
        }
    }

    /// Merging split streams equals one sequential stream, for any split.
    #[test]
    fn moments_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 2..300),
        split in any::<prop::sample::Index>(),
    ) {
        let cut = 1 + split.index(xs.len() - 1);
        let mut left = StreamingMoments::new();
        left.extend_from_slice(&xs[..cut]);
        let mut right = StreamingMoments::new();
        right.extend_from_slice(&xs[cut..]);
        left.merge(&right);

        let mut all = StreamingMoments::new();
        all.extend_from_slice(&xs);

        prop_assert_eq!(left.count(), all.count());
        prop_assert!((left.mean() - all.mean()).abs() < 1e-6);
        prop_assert!(
            (left.population_variance() - all.population_variance()).abs()
                < 1e-6 * (1.0 + all.population_variance())
        );
    }

    /// Welch's t is antisymmetric and its dof symmetric under swapping the
    /// populations.
    #[test]
    fn welch_swap_symmetry(
        a in prop::collection::vec(-50f64..50.0, 3..80),
        b in prop::collection::vec(-50f64..50.0, 3..80),
    ) {
        let mut ma = StreamingMoments::new();
        ma.extend_from_slice(&a);
        let mut mb = StreamingMoments::new();
        mb.extend_from_slice(&b);
        let fwd = welch_t(&ma, &mb);
        let rev = welch_t(&mb, &ma);
        prop_assert!((fwd.t + rev.t).abs() < 1e-9);
        prop_assert!((fwd.dof - rev.dof).abs() < 1e-6);
        // p-values are probabilities.
        prop_assert!((0.0..=1.0).contains(&fwd.p_value()));
    }

    /// SHAP efficiency axiom on arbitrary-ish trained models and inputs.
    #[test]
    fn shap_efficiency_axiom(
        seed in any::<u64>(),
        probe_bits in any::<u32>(),
    ) {
        // Deterministic dataset from the seed.
        let mut d = Dataset::new((0..5).map(|i| format!("f{i}")).collect());
        let mut state = seed | 1;
        for _ in 0..120 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let row: Vec<f32> = (0..5).map(|k| ((state >> (k * 7)) & 1) as f32).collect();
            let y = u8::from(row[0] != row[1]);
            d.push(&row, y).expect("width ok");
        }
        let (neg, pos) = d.class_counts();
        prop_assume!(neg > 0 && pos > 0);
        let model = AdaBoost::fit(
            &d,
            &AdaBoostConfig { n_estimators: 8, max_depth: 2, ..Default::default() },
        )
        .expect("trains");
        let background: Vec<Vec<f32>> = (0..16).map(|i| d.row(i * 3).to_vec()).collect();
        let x: Vec<f32> = (0..5).map(|k| ((probe_bits >> k) & 1) as f32).collect();
        let e = tree_shap(&model, &background, &x);
        prop_assert!(e.efficiency_gap().abs() < 1e-8, "gap {}", e.efficiency_gap());
        prop_assert!((e.fx - model.margin(&x)).abs() < 1e-12);
    }

    /// Model persistence round-trips arbitrary trained AdaBoost ensembles.
    #[test]
    fn model_persistence_roundtrip(seed in any::<u64>()) {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()]);
        let mut state = seed | 1;
        for _ in 0..80 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let row: Vec<f32> = (0..3).map(|k| ((state >> (k * 9)) & 1) as f32).collect();
            let y = u8::from((row[0] + row[1] + row[2]) >= 2.0);
            d.push(&row, y).expect("width ok");
        }
        let (neg, pos) = d.class_counts();
        prop_assume!(neg > 0 && pos > 0);
        let model = AdaBoost::fit(&d, &AdaBoostConfig::default()).expect("trains");
        let text = polaris_ml::persist::encode_ensemble(&model.to_data());
        let back = AdaBoost::from_data(
            polaris_ml::persist::decode_ensemble(
                &mut polaris_ml::persist::Lines::new(&text),
            )
            .expect("decodes"),
        )
        .expect("family matches");
        for i in 0..d.len() {
            prop_assert_eq!(model.predict_proba(d.row(i)), back.predict_proba(d.row(i)));
        }
    }

    /// `.bench` round-trip preserves structure for arbitrary netlists.
    #[test]
    fn bench_format_roundtrip(netlist in arb_netlist(4, 18)) {
        let text = polaris_netlist::write_bench(&netlist);
        let back = polaris_netlist::parse_bench(&text).expect("writer output parses");
        prop_assert_eq!(back.gate_count(), netlist.gate_count());
        prop_assert_eq!(back.stats().kind_histogram, netlist.stats().kind_histogram);
        prop_assert_eq!(back.outputs().len(), netlist.outputs().len());
    }
}
