//! Determinism contract of the sharded parallel campaign engine (ISSUE 2
//! acceptance): sharded runs are **bit-identical at any thread count**, and
//! mergeable accumulators agree with their single-pass counterparts.
//!
//! ISSUE 3 extends the contract to adaptive sequential stopping: an
//! early-stopped run has the same stop round and byte-identical t-statistics
//! at 1/2/8 threads, and equals the truncated prefix of a full non-adaptive
//! run.

use proptest::prelude::*;

use polaris_netlist::generators;
use polaris_sim::campaign::{
    collect_gate_samples, collect_gate_samples_parallel, run_campaign, run_campaign_adaptive,
    run_campaign_parallel, CampaignOutcome, Checkpoint, StoppingRule, TRACES_PER_SHARD,
};
use polaris_sim::{CampaignConfig, GateSamples, Parallelism, PowerModel};
use polaris_tvla::cpa::{run_cpa_parallel, CorrelationAccumulator, CpaConfig};
use polaris_tvla::{
    assess_adaptive, assess_parallel, SequentialConfig, StreamingMoments, WelchAccumulator,
};

/// Acceptance criterion: a 10 000-trace fixed-vs-random campaign yields
/// byte-identical Welch t-statistics at 1, 2, and 8 threads.
#[test]
fn ten_k_trace_campaign_byte_identical_at_1_2_8_threads() {
    let design = generators::iscas_c17();
    let model = PowerModel::default();
    let cfg = CampaignConfig::new(10_000, 10_000, 42);

    let reference = assess_parallel(&design, &model, &cfg, Parallelism::new(1)).expect("campaign");
    let ref_bits: Vec<(u64, u64)> = design
        .ids()
        .map(|id| {
            let r = reference.result(id);
            (r.t.to_bits(), r.dof.to_bits())
        })
        .collect();
    // Sanity: the statistics are non-trivial at this trace count.
    assert!(reference.max_abs_t() > polaris_tvla::TVLA_THRESHOLD);

    for threads in [2, 8] {
        let leakage =
            assess_parallel(&design, &model, &cfg, Parallelism::new(threads)).expect("campaign");
        for (id, &(t_bits, dof_bits)) in design.ids().zip(&ref_bits) {
            let r = leakage.result(id);
            assert_eq!(
                r.t.to_bits(),
                t_bits,
                "gate {id}: t must be byte-identical at {threads} threads"
            );
            assert_eq!(
                r.dof.to_bits(),
                dof_bits,
                "gate {id}: dof at {threads} threads"
            );
        }
    }
}

/// The dense collector reproduces the sequential trace stream exactly —
/// sample for sample, bit for bit — at every shard/worker count.
#[test]
fn dense_collection_bit_identical_at_any_worker_count() {
    let design = generators::iscas_like("c432", 1, 5).expect("known design");
    let model = PowerModel::default();
    // Uneven class sizes and a trailing partial batch.
    let cfg = CampaignConfig::new(700, 333, 9);
    let sequential = collect_gate_samples(&design, &model, &cfg).expect("campaign");
    for threads in [1, 2, 4, 8] {
        let parallel =
            collect_gate_samples_parallel(&design, &model, &cfg, Parallelism::new(threads))
                .expect("campaign");
        for id in design.ids() {
            assert_eq!(
                sequential.fixed(id),
                parallel.fixed(id),
                "{threads} threads"
            );
            assert_eq!(
                sequential.random(id),
                parallel.random(id),
                "{threads} threads"
            );
        }
    }
}

/// CPA outcomes (per-guess correlations) are byte-identical at 1/2/4/8
/// worker threads.
#[test]
fn cpa_correlations_byte_identical_across_workers() {
    let design = generators::iscas_c17();
    let model = PowerModel::default().with_noise(0.2);
    let cfg = CpaConfig {
        traces: 1200,
        seed: 31,
        plaintext_bits: vec![0, 1, 2],
        key_bits: vec![3, 4],
        key_value: 2,
    };
    let predict = |pt: u32, guess: u32| f64::from((pt ^ guess).count_ones());
    let reference =
        run_cpa_parallel(&design, &model, &cfg, &predict, Parallelism::new(1)).expect("cpa");
    for threads in [2, 4, 8] {
        let outcome = run_cpa_parallel(&design, &model, &cfg, &predict, Parallelism::new(threads))
            .expect("cpa");
        assert_eq!(outcome.best_guess, reference.best_guess);
        for (a, b) in reference.correlations.iter().zip(&outcome.correlations) {
            assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
        }
    }
}

/// The sharded Welch accumulation (per-shard accumulators merged pairwise)
/// agrees with one straight streaming pass to floating-point rounding.
#[test]
fn sharded_assessment_tracks_straight_streaming() {
    let design = generators::iscas_like("c880", 1, 3).expect("known design");
    let model = PowerModel::default();
    let cfg = CampaignConfig::new(1500, 1500, 17);
    let mut straight = WelchAccumulator::new();
    run_campaign(&design, &model, &cfg, &mut straight).expect("campaign");
    let straight = straight.leakage();
    let sharded: WelchAccumulator =
        run_campaign_parallel(&design, &model, &cfg, Parallelism::new(4)).expect("campaign");
    let sharded = sharded.leakage();
    for id in design.ids() {
        let a = straight.result(id).t;
        let b = sharded.result(id).t;
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "gate {id}: straight {a} vs sharded {b}"
        );
    }
}

/// The c17 adaptive configuration proven to stop early (seed 11 resolves
/// every gate by mid-budget; see the `bench campaign` adaptive smoke).
fn adaptive_case() -> (polaris_netlist::Netlist, CampaignConfig, SequentialConfig) {
    (
        generators::iscas_c17(),
        CampaignConfig::new(6000, 6000, 11),
        SequentialConfig::default(),
    )
}

/// Acceptance criterion: an early-stopped adaptive run reaches the same stop
/// round and byte-identical t-statistics at 1, 2, and 8 threads.
#[test]
fn adaptive_stop_deterministic_at_1_2_8_threads() {
    let (design, cfg, seq) = adaptive_case();
    let model = PowerModel::default();
    let reference =
        assess_adaptive(&design, &model, &cfg, Parallelism::new(1), &seq).expect("campaign");
    assert!(
        reference.stats.stopped_early,
        "the fixture must stop early: {:?}",
        reference.stats
    );
    for threads in [2, 8] {
        let run = assess_adaptive(&design, &model, &cfg, Parallelism::new(threads), &seq)
            .expect("campaign");
        assert_eq!(
            run.stats, reference.stats,
            "stop round at {threads} threads"
        );
        for id in design.ids() {
            assert_eq!(
                run.leakage.result(id).t.to_bits(),
                reference.leakage.result(id).t.to_bits(),
                "gate {id}: t must be byte-identical at {threads} threads"
            );
            assert_eq!(
                run.leakage.result(id).dof.to_bits(),
                reference.leakage.result(id).dof.to_bits(),
                "gate {id}: dof at {threads} threads"
            );
        }
    }
}

/// Acceptance criterion: the early-stopped result equals the truncated
/// prefix of a full non-adaptive run — statistically (re-assessing at the
/// consumed trace counts is byte-identical) and sample-for-sample (the
/// stopped dense collection is a prefix of the full dense collection).
#[test]
fn adaptive_equals_truncated_prefix_of_full_run() {
    let (design, cfg, seq) = adaptive_case();
    let model = PowerModel::default();
    let stopped =
        assess_adaptive(&design, &model, &cfg, Parallelism::new(4), &seq).expect("campaign");
    assert!(stopped.stats.stopped_early);
    assert!(stopped.stats.traces_used() < cfg.n_fixed + cfg.n_random);

    // Statistic-level: a non-adaptive campaign at the consumed counts.
    let prefix_cfg = CampaignConfig::new(
        stopped.stats.fixed_traces,
        stopped.stats.random_traces,
        cfg.seed,
    );
    let prefix =
        assess_parallel(&design, &model, &prefix_cfg, Parallelism::new(2)).expect("campaign");
    for id in design.ids() {
        assert_eq!(
            stopped.leakage.result(id).t.to_bits(),
            prefix.result(id).t.to_bits(),
            "gate {id}"
        );
    }

    // Sample-level: rerun the round engine on a dense collector with a rule
    // that stops at the same round, and compare against the full stream.
    struct StopAtRound(usize);
    impl<S> StoppingRule<S> for StopAtRound {
        fn should_stop(&mut self, c: &Checkpoint<'_, S>) -> bool {
            c.round >= self.0
        }
    }
    let dense: CampaignOutcome<GateSamples> = run_campaign_adaptive(
        &design,
        &model,
        &cfg,
        Parallelism::new(8),
        seq.shards_per_round,
        &mut StopAtRound(stopped.stats.rounds),
    )
    .expect("campaign");
    assert_eq!(dense.stats, stopped.stats);
    let full = collect_gate_samples(&design, &model, &cfg).expect("campaign");
    for id in design.ids() {
        assert_eq!(
            dense.sink.fixed(id),
            &full.fixed(id)[..dense.stats.fixed_traces],
            "gate {id}: fixed prefix"
        );
        assert_eq!(
            dense.sink.random(id),
            &full.random(id)[..dense.stats.random_traces],
            "gate {id}: random prefix"
        );
    }
}

/// The stop decision is a pure function of the checkpoint-folded state, so
/// the unlucky seeds are deterministic too: a campaign that cannot converge
/// (alpha too tight) consumes its whole budget and matches the non-adaptive
/// engine bit for bit.
#[test]
fn non_converging_adaptive_run_matches_full_campaign() {
    // A masked xor is the quiet-cell case: leaky resolutions need no
    // margin, but a clean one does — and alpha this tight underflows every
    // look's spending, so the margins are infinite and the run must spend
    // its whole budget.
    let src = "
module m (a, m0, y);
  input a;
  mask_input m0;
  output y;
  xor g (y, a, m0);
endmodule";
    let design = polaris_netlist::parse_netlist(src).expect("valid netlist");
    let model = PowerModel::default();
    let cfg = CampaignConfig::new(1500, 1500, 7);
    let seq = SequentialConfig {
        alpha: 1e-13,
        ..SequentialConfig::default()
    };
    let adaptive =
        assess_adaptive(&design, &model, &cfg, Parallelism::new(4), &seq).expect("campaign");
    assert!(!adaptive.stats.stopped_early);
    let full = assess_parallel(&design, &model, &cfg, Parallelism::new(2)).expect("campaign");
    for id in design.ids() {
        assert_eq!(
            adaptive.leakage.result(id).t.to_bits(),
            full.result(id).t.to_bits()
        );
    }
}

/// Early stopping composes with the per-population shard layout: trace
/// counts at the stop boundary are whole shards of each class.
#[test]
fn adaptive_stop_lands_on_shard_boundaries() {
    let (design, cfg, seq) = adaptive_case();
    let a = assess_adaptive(
        &design,
        &PowerModel::default(),
        &cfg,
        Parallelism::sequential(),
        &seq,
    )
    .expect("campaign");
    assert_eq!(a.stats.fixed_traces % TRACES_PER_SHARD, 0);
    assert_eq!(a.stats.random_traces % TRACES_PER_SHARD, 0);
}

fn lcg_stream(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 20.0 - 10.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merging moment accumulators over an arbitrary split of an arbitrary
    /// stream equals the single-pass accumulation.
    #[test]
    fn merged_moments_equal_single_pass(seed in any::<u64>(), len in 8usize..800, cut in 0usize..800) {
        let xs = lcg_stream(len, seed);
        let cut = cut % (len + 1);
        let mut left = StreamingMoments::new();
        left.extend_from_slice(&xs[..cut]);
        let mut right = StreamingMoments::new();
        right.extend_from_slice(&xs[cut..]);
        left.merge(&right);

        let mut whole = StreamingMoments::new();
        whole.extend_from_slice(&xs);

        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.population_variance() - whole.population_variance()).abs() < 1e-8);
        prop_assert!((left.central_moment4() - whole.central_moment4()).abs() < 1e-5);
    }

    /// Merging correlation accumulators over an arbitrary split equals the
    /// single-pass accumulation (the CPA worker contract).
    #[test]
    fn merged_correlations_equal_single_pass(seed in any::<u64>(), len in 8usize..800, cut in 0usize..800) {
        let xs = lcg_stream(len, seed);
        let ys = lcg_stream(len, seed ^ 0xDEAD_BEEF);
        let cut = cut % (len + 1);
        let mut left = CorrelationAccumulator::new();
        let mut right = CorrelationAccumulator::new();
        let mut whole = CorrelationAccumulator::new();
        for i in 0..len {
            whole.push(xs[i], ys[i]);
            if i < cut {
                left.push(xs[i], ys[i]);
            } else {
                right.push(xs[i], ys[i]);
            }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.pearson() - whole.pearson()).abs() < 1e-9);
    }

    /// Small random campaigns assessed at 1/2/4/8 worker threads are
    /// byte-identical to the single-worker run.
    #[test]
    fn random_campaigns_thread_invariant(seed in any::<u64>(), nf in 1usize..400, nr in 1usize..400) {
        let design = generators::iscas_c17();
        let model = PowerModel::default();
        let cfg = CampaignConfig::new(nf, nr, seed);
        let reference = assess_parallel(&design, &model, &cfg, Parallelism::new(1)).expect("campaign");
        for threads in [2usize, 4, 8] {
            let leakage = assess_parallel(&design, &model, &cfg, Parallelism::new(threads)).expect("campaign");
            for id in design.ids() {
                prop_assert_eq!(reference.result(id).t.to_bits(), leakage.result(id).t.to_bits());
            }
        }
    }
}
