//! Byte-identity of the streaming trivariate engine across every execution
//! shape: the per-triple t statistics of one campaign must carry the *same
//! bits* whether the co-moments stream through 1, 2, or 8 worker threads,
//! 1- or 8-word SIMD lanes, a multi-part distributed split, or a fleet job
//! on a shared pool. The engine's determinism story is a shared computation
//! DAG (fixed shard grid, canonical ascending fold) — these tests pin that
//! the trivariate sink joined it — plus the payoff the engine exists for: a
//! 3-share ISW masked AND is clean through order 2 and fails only the
//! third-order test.

use polaris_dist::{execute_part_with, merge_parts};
use polaris_masking::isw::{masked_and_order2, IswMasks};
use polaris_netlist::{generators, Netlist};
use polaris_sim::fleet::{run_fleet, FleetJob};
use polaris_sim::{run_campaign_parallel_with, CampaignConfig, Parallelism, PowerModel};
use polaris_tvla::{
    all_pairs, all_triples, assess_pairs, assess_triples, TripleAccumulator, TVLA_THRESHOLD,
};

fn design() -> Netlist {
    generators::iscas_c17()
}

fn campaign() -> CampaignConfig {
    // 600 + 600 traces span several 256-trace shards per class, so thread
    // counts, lane widths, and part splits all genuinely cut the grid.
    CampaignConfig::new(600, 600, 23)
}

fn triple_list(n: &Netlist) -> Vec<(u32, u32, u32)> {
    all_triples(&n.cell_ids())
}

/// The (t, dof) bit patterns of a streaming campaign at the given
/// parallelism, in triple-list order.
fn streaming_bits(
    n: &Netlist,
    cfg: &CampaignConfig,
    par: Parallelism,
    triples: &[(u32, u32, u32)],
) -> Vec<(u64, u64)> {
    let acc: TripleAccumulator =
        run_campaign_parallel_with(n, &PowerModel::default(), cfg, par, || {
            TripleAccumulator::for_triples(triples.to_vec())
        })
        .expect("campaign");
    acc.results()
        .iter()
        .map(|(_, _, _, r)| (r.t.to_bits(), r.dof.to_bits()))
        .collect()
}

#[test]
fn streaming_sweep_is_bit_identical_at_any_thread_count_and_lane_width() {
    let n = design();
    let cfg = campaign();
    let triples = triple_list(&n);
    let reference = streaming_bits(&n, &cfg, Parallelism::sequential(), &triples);
    assert!(!reference.is_empty());
    for threads in [1usize, 2, 8] {
        for lane_words in [1usize, 8] {
            let par = Parallelism::new(threads).with_lane_words(lane_words);
            assert_eq!(
                streaming_bits(&n, &cfg, par, &triples),
                reference,
                "{threads} threads x {lane_words} lane words"
            );
        }
    }
}

#[test]
fn distributed_split_folds_bit_identically_at_any_partitioning() {
    let n = design();
    let cfg = campaign();
    let triples = triple_list(&n);
    let model = PowerModel::default();
    let reference = streaming_bits(&n, &cfg, Parallelism::sequential(), &triples);

    for parts in [1usize, 2, 3] {
        let files: Vec<Vec<u8>> = (0..parts)
            .map(|i| {
                execute_part_with(&n, &model, &cfg, Parallelism::new(2), i, parts, || {
                    TripleAccumulator::for_triples(triples.clone())
                })
                .expect("part executes")
            })
            .collect();
        let merged = merge_parts::<TripleAccumulator>(files.iter().map(Vec::as_slice), None)
            .expect("merges");
        let bits: Vec<(u64, u64)> = merged
            .state
            .results()
            .iter()
            .map(|(_, _, _, r)| (r.t.to_bits(), r.dof.to_bits()))
            .collect();
        assert_eq!(bits, reference, "{parts}-worker split");
    }
}

#[test]
fn fleet_triple_job_matches_its_standalone_run() {
    let n = design();
    let cfg = campaign();
    let triples = triple_list(&n);
    let model = PowerModel::default();
    let reference = streaming_bits(&n, &cfg, Parallelism::sequential(), &triples);

    // A triple job rides the fleet's sink-factory hook: same factory, same
    // grid, same canonical fold — mid-fleet scheduling must not change bits.
    for threads in [1usize, 3] {
        let filler_cfg = CampaignConfig::new(300, 300, 5);
        let job_triples = triples.clone();
        let jobs = vec![
            FleetJob::<TripleAccumulator>::new(&n, &model, cfg.clone())
                .with_sink_factory(move || TripleAccumulator::for_triples(job_triples.clone())),
            FleetJob::<TripleAccumulator>::new(&n, &model, filler_cfg)
                .with_sink_factory(|| TripleAccumulator::for_triples(vec![(0, 1, 2)])),
        ];
        let outcomes = run_fleet(jobs, Parallelism::new(threads)).expect("fleet");
        let bits: Vec<(u64, u64)> = outcomes[0]
            .sink
            .results()
            .iter()
            .map(|(_, _, _, r)| (r.t.to_bits(), r.dof.to_bits()))
            .collect();
        assert_eq!(bits, reference, "{threads}-thread fleet");
    }
}

/// The payoff demo: a second-order ISW masked AND (3 shares) passes TVLA at
/// orders 1 and 2 on its output-share gates and fails only at order 3 —
/// the repo's first positive higher-order detection on a real composite.
#[test]
fn isw_masked_and_is_clean_through_order_two_and_leaks_at_order_three() {
    let mut n = Netlist::new("isw_and");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let masks = IswMasks::allocate(&mut n, "g");
    let exp = masked_and_order2(&mut n, "g", a, b, masks);
    n.add_output("y", exp.output).expect("output binds");

    // Fixed class pins a = b = 1 (so a·b = 1); the random class re-draws
    // both inputs. Low noise keeps the campaign small while the per-order
    // margins stay wide.
    let cfg = CampaignConfig::new(4000, 4000, 7).with_fixed_vector(vec![true, true]);
    let model = PowerModel::default().with_noise(0.05);

    // The output shares c0 ⊕ c1 ⊕ c2 = a·b. Any single share is uniformly
    // masked and any two are jointly independent of the product; only the
    // triple recombines it. (The trailing r01/out gates are the crate's
    // boundary re-combination and intentionally excluded.)
    let share = |suffix: &str| {
        n.iter()
            .find(|(_, g)| g.name() == format!("g_{suffix}"))
            .map(|(id, _)| id)
            .expect("share gate present")
    };
    let shares = [share("c0"), share("c1"), share("c2")];

    let first = polaris_tvla::assess(&n, &model, &cfg).expect("first-order campaign");
    for &g in &shares {
        assert!(
            first.abs_t(g) < TVLA_THRESHOLD,
            "share gate {} must be first-order clean: |t| = {:.2}",
            n.gate(g).name(),
            first.abs_t(g)
        );
    }

    let pairs = all_pairs(&shares);
    for (g1, g2, r) in
        assess_pairs(&n, &model, &cfg, Parallelism::new(2), &pairs).expect("pair campaign")
    {
        assert!(
            r.t.abs() < TVLA_THRESHOLD,
            "share pair ({}, {}) must be second-order clean: |t| = {:.2}",
            n.gate(g1).name(),
            n.gate(g2).name(),
            r.t.abs()
        );
    }

    let sweep = assess_triples(&n, &model, &cfg, Parallelism::new(2), &all_triples(&shares))
        .expect("triple campaign");
    let (g1, g2, g3, r) = &sweep[0];
    assert!(
        r.t.abs() > TVLA_THRESHOLD,
        "share triple ({}, {}, {}) must fail trivariate TVLA: |t| = {:.2}",
        n.gate(*g1).name(),
        n.gate(*g2).name(),
        n.gate(*g3).name(),
        r.t.abs()
    );
}
