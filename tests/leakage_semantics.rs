//! Cross-crate leakage semantics: the physical story the whole reproduction
//! rests on — unprotected data-dependent logic fails TVLA, masked logic
//! passes — verified end to end through sim + tvla + masking.

use polaris_masking::{apply_masking, MaskingStyle};
use polaris_netlist::transform::decompose;
use polaris_netlist::{generators, GateId};
use polaris_sim::{CampaignConfig, PowerModel};
use polaris_tvla::{assess, WelchAccumulator, TVLA_THRESHOLD};

#[test]
fn unprotected_designs_fail_tvla() {
    let power = PowerModel::default();
    for name in ["des3", "sin", "voter"] {
        let design = generators::by_name(name, 1, 3).expect("known design");
        let cfg = CampaignConfig::new(400, 400, 5);
        let summary = assess(&design, &power, &cfg)
            .expect("assessment runs")
            .summarize(&design);
        assert!(
            summary.max_abs_t > TVLA_THRESHOLD,
            "{name}: unprotected max |t| = {:.2} should exceed 4.5",
            summary.max_abs_t
        );
        assert!(summary.leaky_cells > 0, "{name} shows no leaky gates");
    }
}

#[test]
fn full_masking_collapses_leakage() {
    let power = PowerModel::default();
    let (design, _) = decompose(&generators::iscas_c17()).expect("valid design");
    let cfg = CampaignConfig::new(1000, 1000, 9);
    let before = assess(&design, &power, &cfg)
        .expect("assessment")
        .summarize(&design);

    let masked = apply_masking(&design, &design.cell_ids(), MaskingStyle::Trichina)
        .expect("masking succeeds");
    // Grouped per-original-gate assessment.
    let mut acc = WelchAccumulator::new();
    polaris_sim::campaign::run_campaign(&masked.netlist, &power, &cfg, &mut acc)
        .expect("campaign runs");
    let leakage = acc.leakage();
    let grouped: Vec<f64> = design
        .cell_ids()
        .iter()
        .map(|&orig| {
            let gates = masked.gates_for(orig);
            gates.iter().map(|&g| leakage.abs_t(g)).sum::<f64>() / gates.len() as f64
        })
        .collect();
    let after_mean = grouped.iter().sum::<f64>() / grouped.len() as f64;
    assert!(
        after_mean < before.mean_abs_t * 0.6,
        "masking every cell should cut mean |t| substantially: {:.2} -> {after_mean:.2}",
        before.mean_abs_t
    );
}

#[test]
fn fixed_vs_fixed_distinguishes_chosen_plaintexts() {
    // Two fixed input classes with different Hamming weights are
    // distinguishable on an unprotected design (the paper's fixed-vs-fixed
    // TVLA mode).
    let design = generators::iscas_c17();
    let power = PowerModel::default();
    let n_inputs = design.data_inputs().len();
    let cfg = CampaignConfig::new(500, 500, 3)
        .with_fixed_vector(vec![false; n_inputs])
        .fixed_vs_fixed(vec![true; n_inputs]);
    let summary = assess(&design, &power, &cfg)
        .expect("assessment")
        .summarize(&design);
    assert!(
        summary.max_abs_t > TVLA_THRESHOLD,
        "fixed-vs-fixed should separate all-0 from all-1 inputs: {:.2}",
        summary.max_abs_t
    );
}

#[test]
fn streaming_assessment_matches_dense_samples() {
    // The WelchAccumulator (streaming) and a dense GateSamples collection
    // followed by slice-based Welch must agree exactly.
    let design = generators::iscas_c17();
    let power = PowerModel::default();
    let cfg = CampaignConfig::new(333, 277, 13);

    let streamed = assess(&design, &power, &cfg).expect("assessment");
    let dense =
        polaris_sim::campaign::collect_gate_samples(&design, &power, &cfg).expect("campaign");
    for id in design.ids() {
        let slice_result = polaris_tvla::welch::welch_t_slices(dense.fixed(id), dense.random(id));
        let stream_result = streamed.result(id);
        assert!(
            (slice_result.t - stream_result.t).abs() < 1e-9,
            "gate {id}: {} vs {}",
            slice_result.t,
            stream_result.t
        );
        assert!((slice_result.dof - stream_result.dof).abs() < 1e-6);
    }
}

#[test]
fn second_order_leakage_survives_first_order_masking() {
    // A single Trichina-masked AND is first-order secure but its centered
    // squares still carry information (2nd-order leakage) — the classic
    // limitation the DOM extension addresses with more shares.
    let mut n = polaris_netlist::Netlist::new("one_and");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let g = n
        .add_gate(polaris_netlist::GateKind::And, "g", &[a, b])
        .expect("valid");
    n.add_output("y", g).expect("valid");
    let masked = apply_masking(&n, &[g], MaskingStyle::Trichina).expect("masking");

    let power = PowerModel::default().with_noise(0.05);
    let cfg = CampaignConfig::new(4000, 4000, 21);
    let first = polaris_tvla::assess(&masked.netlist, &power, &cfg).expect("assessment");
    let second = polaris_tvla::assess_order2(&masked.netlist, &power, &cfg).expect("assessment");

    // First-order: all composite gates below threshold except possibly the
    // boundary re-combination gate (which is deliberate, see masking docs).
    let composite = masked.gates_for(g);
    let boundary = *composite.last().expect("nonempty");
    for &cg in &composite {
        if cg == boundary {
            continue;
        }
        assert!(
            first.abs_t(cg) < TVLA_THRESHOLD,
            "gate {cg} leaks first-order: {:.2}",
            first.abs_t(cg)
        );
    }
    // Second-order: at least one composite gate is distinguishable.
    let max2 = composite
        .iter()
        .map(|&cg| second.abs_t(cg))
        .fold(0.0f64, f64::max);
    assert!(
        max2 > TVLA_THRESHOLD,
        "second-order stats should still see the masked AND: max |t2| = {max2:.2}"
    );
}

#[test]
fn isw_order2_defeats_bivariate_tvla_where_trichina_fails() {
    // Security ordering across the masking families on a single AND gate.
    // In the zero-delay energy model a gate's per-trace energy is a
    // Bernoulli toggle, so *univariate* statistics only see first-order
    // differences; the real second-order test is bivariate — the centered
    // product of two gates' samples (Schneider–Moradi). Expectations:
    //
    //   Trichina (2 shares): internal gates clean first-order, but some
    //   PAIR of internal gates leaks bivariately;
    //   ISW (3 shares): every internal pair is clean (three-way
    //   combination would be required).
    let mut n = polaris_netlist::Netlist::new("one_and");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let g = n
        .add_gate(polaris_netlist::GateKind::And, "g", &[a, b])
        .expect("valid");
    n.add_output("y", g).expect("valid");

    let power = PowerModel::default().with_noise(0.05);
    // Pin the fixed class to a·b = 1 — the minority product value — so the
    // second-order statistic has maximal contrast against the random class.
    let cfg = CampaignConfig::new(6000, 6000, 33).with_fixed_vector(vec![true, true]);

    // The share-domain core = composite minus the entry sharing gates
    // (which touch the raw operands: 2 for Trichina's â/b̂, 4 for ISW's
    // a0/b0 chain) and the exit re-combination tail (1 for Trichina's
    // unmask XOR, 2 for ISW's r01 + out). Entry/exit gates are the
    // documented concession of the local mask/re-combine convention — the
    // raw operand wires exist in the surrounding netlist either way.
    let core = |masked: &polaris_masking::MaskedDesign,
                entry_cut: usize,
                exit_cut: usize|
     -> Vec<GateId> {
        let gates = masked.gates_for(g);
        gates[entry_cut..gates.len() - exit_cut].to_vec()
    };

    // Trichina: first-order clean internally, bivariate core pair leaks.
    let tri = apply_masking(&n, &[g], MaskingStyle::Trichina).expect("masking");
    let first = polaris_tvla::assess(&tri.netlist, &power, &cfg).expect("assessment");
    let tri_internal = core(&tri, 2, 1);
    for &cg in &tri_internal {
        assert!(
            first.abs_t(cg) < TVLA_THRESHOLD,
            "Trichina internal gate {cg} leaks first-order: {:.2}",
            first.abs_t(cg)
        );
    }
    let samples =
        polaris_sim::campaign::collect_gate_samples(&tri.netlist, &power, &cfg).expect("campaign");
    let sweep = polaris_tvla::bivariate::bivariate_sweep(&samples, &tri_internal).expect("sweep");
    let worst_pair = sweep.first().expect("pairs exist");
    assert!(
        worst_pair.2.t.abs() > TVLA_THRESHOLD,
        "some Trichina pair must fail bivariate TVLA: max |t| = {:.2}",
        worst_pair.2.t.abs()
    );

    // ISW: every core pair clean bivariately.
    let isw = apply_masking(&n, &[g], MaskingStyle::IswOrder2).expect("masking");
    let first_isw = polaris_tvla::assess(&isw.netlist, &power, &cfg).expect("assessment");
    let isw_internal = core(&isw, 4, 2);
    for &cg in &isw_internal {
        assert!(
            first_isw.abs_t(cg) < TVLA_THRESHOLD,
            "ISW internal gate {cg} leaks first-order: {:.2}",
            first_isw.abs_t(cg)
        );
    }
    let samples_isw =
        polaris_sim::campaign::collect_gate_samples(&isw.netlist, &power, &cfg).expect("campaign");
    let sweep_isw =
        polaris_tvla::bivariate::bivariate_sweep(&samples_isw, &isw_internal).expect("sweep");
    let worst_isw = sweep_isw.first().expect("pairs exist");
    assert!(
        worst_isw.2.t.abs() < TVLA_THRESHOLD,
        "no ISW pair may fail bivariate TVLA: max |t| = {:.2} (pair {} / {})",
        worst_isw.2.t.abs(),
        worst_isw.0,
        worst_isw.1
    );
}

#[test]
fn leaky_gate_ranking_is_stable_across_seeds() {
    // The *identity* of the leakiest gates is physical, not an artifact of
    // the campaign seed: top-quartile overlap across two seeds.
    let design = generators::des3(1, 3);
    let power = PowerModel::default();
    let top = |seed: u64| -> Vec<GateId> {
        let cfg = CampaignConfig::new(600, 600, seed);
        let l = assess(&design, &power, &cfg).expect("assessment");
        let mut cells: Vec<(GateId, f64)> = design
            .cell_ids()
            .into_iter()
            .map(|id| (id, l.abs_t(id)))
            .collect();
        cells.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        cells.truncate(cells.len() / 4);
        cells.into_iter().map(|(id, _)| id).collect()
    };
    let a = top(1);
    let b = top(2);
    let a_set: std::collections::HashSet<_> = a.iter().collect();
    let overlap = b.iter().filter(|id| a_set.contains(id)).count();
    assert!(
        overlap * 2 > b.len(),
        "top-quartile leaky gates should mostly agree across seeds: {overlap}/{}",
        b.len()
    );
}
