//! Acceptance tests for the distributed campaign subsystem: a campaign
//! planned into 1, 2, and 4 parts, executed as independent shard-state
//! blobs, and folded centrally is **byte-identical** to the single-process
//! parallel engine — per-gate statistics for the Welch sink, and every raw
//! sample for the dense [`GateSamples`] sink — and the merged fold drops
//! into the masking flow as a pre-folded baseline without changing one bit
//! of the mitigation report.

use polaris::config::PolarisConfig;
use polaris::masking_flow::reporting_campaign;
use polaris::pipeline::{MaskBudget, PolarisPipeline};
use polaris_dist::{execute_part, merge_parts, merged_outcome, DistPlan, Merged, SinkKind};
use polaris_netlist::generators;
use polaris_netlist::transform::decompose;
use polaris_sim::{CampaignConfig, GateSamples, Parallelism, PowerModel};
use polaris_tvla::{assess_parallel, WelchAccumulator};

/// ≥ 10k traces in total (5200 per class), as the acceptance criteria
/// demand — large enough that the grid has many shards per part.
const TRACES_PER_CLASS: usize = 5200;
const SEED: u64 = 29;

fn part_files<S>(
    netlist: &polaris_netlist::Netlist,
    cfg: &CampaignConfig,
    parts: usize,
) -> Vec<Vec<u8>>
where
    S: polaris_dist::ShardState + polaris_sim::MergeableSink + Default,
{
    (0..parts)
        .map(|i| {
            execute_part::<S>(
                netlist,
                &PowerModel::default(),
                cfg,
                // Alternate worker-side thread counts: neither may matter.
                Parallelism::new(1 + i % 2),
                i,
                parts,
            )
            .expect("part executes")
        })
        .collect()
}

#[test]
fn welch_statistics_are_byte_identical_at_any_partitioning() {
    let netlist = generators::iscas_c17();
    let cfg = CampaignConfig::new(TRACES_PER_CLASS, TRACES_PER_CLASS, SEED);
    let model = PowerModel::default();
    let reference = assess_parallel(&netlist, &model, &cfg, Parallelism::new(2)).unwrap();

    for parts in [1usize, 2, 4] {
        let files = part_files::<WelchAccumulator>(&netlist, &cfg, parts);
        let merged: Merged<WelchAccumulator> =
            merge_parts(files.iter().map(Vec::as_slice), None).unwrap();
        assert_eq!(merged.parts, parts);
        let leakage = merged.state.leakage();
        for id in netlist.ids() {
            assert_eq!(
                reference.result(id).t.to_bits(),
                leakage.result(id).t.to_bits(),
                "t must be byte-identical at {parts} part(s), gate {id}"
            );
            assert_eq!(
                reference.result(id).dof.to_bits(),
                leakage.result(id).dof.to_bits(),
                "dof must be byte-identical at {parts} part(s), gate {id}"
            );
        }
    }
}

#[test]
fn dense_samples_are_identical_at_any_partitioning() {
    let netlist = generators::iscas_c17();
    let cfg = CampaignConfig::new(TRACES_PER_CLASS, TRACES_PER_CLASS, SEED);
    let model = PowerModel::default();
    let reference: GateSamples =
        polaris_sim::run_campaign_parallel(&netlist, &model, &cfg, Parallelism::new(4)).unwrap();

    for parts in [1usize, 2, 4] {
        let files = part_files::<GateSamples>(&netlist, &cfg, parts);
        let merged: Merged<GateSamples> =
            merge_parts(files.iter().map(Vec::as_slice), None).unwrap();
        for id in netlist.ids() {
            assert_eq!(
                reference.fixed(id),
                merged.state.fixed(id),
                "fixed-class samples must match exactly at {parts} part(s)"
            );
            assert_eq!(
                reference.random(id),
                merged.state.random(id),
                "random-class samples must match exactly at {parts} part(s)"
            );
        }
    }
}

#[test]
fn plan_driven_flow_matches_direct_partitioning() {
    // The manifest round trip (coordinator → worker) changes nothing: a
    // worker reconstructing the campaign from a parsed plan produces the
    // same part bytes as one sharing the coordinator's in-memory config.
    let netlist = generators::iscas_c17();
    let cfg = CampaignConfig::new(1200, 1200, SEED);
    let plan = DistPlan::new(&netlist, &PowerModel::default(), &cfg, SinkKind::Welch, 2).unwrap();
    let parsed = DistPlan::parse(&plan.render()).unwrap();
    let campaign = parsed.verify(&netlist, &PowerModel::default()).unwrap();
    assert_eq!(campaign, cfg);
    for part in 0..2 {
        let from_manifest = execute_part::<WelchAccumulator>(
            &netlist,
            &PowerModel::default(),
            &campaign,
            Parallelism::sequential(),
            part,
            parsed.parts.len(),
        )
        .unwrap();
        let direct = execute_part::<WelchAccumulator>(
            &netlist,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            part,
            2,
        )
        .unwrap();
        assert_eq!(from_manifest, direct, "part {part} bytes diverged");
    }
}

#[test]
fn masking_flow_consumes_a_distributed_baseline_bit_for_bit() {
    // Train a small POLARIS instance, then protect c17 twice: once with the
    // in-process baseline campaign, once feeding the same campaign folded
    // from distributed shard states. Every reported statistic must agree to
    // the bit — the distributed baseline is the same campaign, not an
    // approximation of it.
    let config = PolarisConfig {
        msize: 8,
        iterations: 4,
        max_traces: 600,
        n_estimators: 20,
        learning_rate: 0.5,
        ..PolarisConfig::fast_profile(5)
    };
    let power = PowerModel::default();
    let training = vec![generators::iscas_like("c432", 1, 5).unwrap()];
    let trained = PolarisPipeline::new(config)
        .train(&training, &power)
        .unwrap();

    let target = generators::iscas_c17();
    let local = trained
        .mask_design(&target, &power, MaskBudget::CellFraction(1.0))
        .unwrap();

    // Distributed baseline: plan the reporting campaign over the normalized
    // design, execute two parts, merge, wrap as a CampaignOutcome.
    let (normalized, _) = decompose(&target).unwrap();
    let campaign = reporting_campaign(trained.config());
    let files = part_files::<WelchAccumulator>(&normalized, &campaign, 2);
    let merged = merge_parts::<WelchAccumulator>(files.iter().map(Vec::as_slice), None).unwrap();
    let baseline = merged_outcome(&normalized, &power, &campaign, merged).unwrap();
    let distributed = trained
        .mask_design_with_baseline(&target, &power, MaskBudget::CellFraction(1.0), baseline)
        .unwrap();

    assert_eq!(local.masked_gates, distributed.masked_gates);
    assert_eq!(
        local.before.total_abs_t.to_bits(),
        distributed.before.total_abs_t.to_bits()
    );
    assert_eq!(
        local.after.total_abs_t.to_bits(),
        distributed.after.total_abs_t.to_bits()
    );
    assert_eq!(
        local.before.max_abs_t.to_bits(),
        distributed.before.max_abs_t.to_bits()
    );
    assert_eq!(local.before.leaky_cells, distributed.before.leaky_cells);
    assert_eq!(local.after.leaky_cells, distributed.after.leaky_cells);
    assert_eq!(
        local.campaign_fixed_traces,
        distributed.campaign_fixed_traces
    );
    assert_eq!(local.stopped_early, distributed.stopped_early);
    for (a, b) in local.scores.iter().zip(&distributed.scores) {
        assert_eq!(a.to_bits(), b.to_bits(), "model scores must be identical");
    }
    for (a, b) in local
        .after_grouped_abs_t
        .iter()
        .zip(&distributed.after_grouped_abs_t)
    {
        assert_eq!(a.to_bits(), b.to_bits(), "grouped |t| must be identical");
    }

    // The leaky-fraction budget resolves against the same baseline on both
    // paths, so it must agree bit for bit too (this is the budget kind
    // whose leaky count actually depends on the campaign).
    let local_leaky = trained
        .mask_design(&target, &power, MaskBudget::LeakyFraction(1.0))
        .unwrap();
    let merged = merge_parts::<WelchAccumulator>(files.iter().map(Vec::as_slice), None).unwrap();
    let baseline = merged_outcome(&normalized, &power, &campaign, merged).unwrap();
    let dist_leaky = trained
        .mask_design_with_baseline(&target, &power, MaskBudget::LeakyFraction(1.0), baseline)
        .unwrap();
    assert_eq!(local_leaky.masked_gates, dist_leaky.masked_gates);
    assert_eq!(
        local_leaky.after.total_abs_t.to_bits(),
        dist_leaky.after.total_abs_t.to_bits()
    );
}
