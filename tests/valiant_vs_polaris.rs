//! The paper's comparative claims, verified end-to-end at test scale:
//! POLARIS matches/or-beats VALIANT's leakage reduction per masked gate,
//! runs its mitigation path much faster, and costs less overhead at the
//! same budget.

use std::time::Instant;

use polaris::config::PolarisConfig;
use polaris::masking_flow::{assess_grouped, rank_gates};
use polaris::pipeline::PolarisPipeline;
use polaris_masking::{analyze_overhead, apply_masking, CellLibrary, MaskingStyle};
use polaris_netlist::generators;
use polaris_netlist::transform::decompose;
use polaris_sim::{CampaignConfig, Parallelism, PowerModel};
use polaris_valiant::{ValiantConfig, ValiantFlow};

fn trained() -> polaris::TrainedPolaris {
    let config = PolarisConfig {
        msize: 10,
        iterations: 4,
        max_traces: 200,
        n_estimators: 25,
        learning_rate: 0.5,
        ..PolarisConfig::fast_profile(3)
    };
    let training = vec![
        generators::iscas_like("c432", 1, 5).expect("known design"),
        generators::iscas_like("c499", 1, 6).expect("known design"),
    ];
    PolarisPipeline::new(config)
        .train(&training, &PowerModel::default())
        .expect("training succeeds")
}

#[test]
fn polaris_mitigation_path_is_faster_than_valiant() {
    let power = PowerModel::default();
    let trained = trained();
    let (design, _) = decompose(&generators::sin(1, 7)).expect("valid design");
    let campaign = CampaignConfig::new(200, 200, 5);

    // VALIANT: full TVLA-in-the-loop flow.
    let valiant = ValiantFlow::new(ValiantConfig {
        campaign: campaign.clone(),
        max_iterations: 2,
        ..Default::default()
    })
    .run(&design, &power)
    .expect("valiant runs");

    // POLARIS mitigation path: rank + mask, no TVLA.
    let t0 = Instant::now();
    let ranked = rank_gates(
        &design,
        trained.model(),
        Some(trained.rules()),
        trained.extractor(),
    )
    .expect("ranking runs");
    let selected: Vec<_> = ranked
        .iter()
        .take(valiant.masked_gates.len().max(1))
        .map(|(id, _)| *id)
        .collect();
    let _masked = apply_masking(&design, &selected, MaskingStyle::Trichina).expect("masking");
    let polaris_time = t0.elapsed().as_secs_f64();

    assert!(
        polaris_time < valiant.runtime_s / 2.0,
        "POLARIS ({polaris_time:.3}s) should be far faster than VALIANT ({:.3}s)",
        valiant.runtime_s
    );
}

#[test]
fn comparable_reduction_at_equal_budget() {
    let power = PowerModel::default();
    let trained = trained();
    let (design, _) = decompose(&generators::voter(1, 7)).expect("valid design");
    let campaign = CampaignConfig::new(250, 250, 5);
    let before = polaris_tvla::assess(&design, &power, &campaign)
        .expect("assessment")
        .summarize(&design);

    let valiant = ValiantFlow::new(ValiantConfig {
        campaign: campaign.clone(),
        max_iterations: 3,
        ..Default::default()
    })
    .run(&design, &power)
    .expect("valiant runs");

    // POLARIS with the same number of masked gates.
    let budget = valiant.masked_gates.len().max(1);
    let ranked = rank_gates(
        &design,
        trained.model(),
        Some(trained.rules()),
        trained.extractor(),
    )
    .expect("ranking runs");
    let selected: Vec<_> = ranked.iter().take(budget).map(|(id, _)| *id).collect();
    let masked = apply_masking(&design, &selected, MaskingStyle::Trichina).expect("masking");
    let (after, _) = assess_grouped(
        &design,
        &masked,
        &power,
        &campaign,
        Parallelism::sequential(),
    )
    .expect("assessment");
    let polaris_red = after.reduction_pct_from(&before);

    assert!(
        polaris_red > valiant.reduction_pct() * 0.5,
        "POLARIS ({polaris_red:.1}%) should be in VALIANT's league ({:.1}%) at equal budget",
        valiant.reduction_pct()
    );
    assert!(
        polaris_red > 10.0,
        "absolute reduction too small: {polaris_red:.1}%"
    );
}

#[test]
fn lower_overhead_at_half_budget() {
    let power = PowerModel::default();
    let trained = trained();
    let lib = CellLibrary::default();
    let (design, _) = decompose(&generators::des3(1, 7)).expect("valid design");
    let campaign = CampaignConfig::new(200, 200, 5);

    let valiant = ValiantFlow::new(ValiantConfig {
        campaign: campaign.clone(),
        max_iterations: 3,
        ..Default::default()
    })
    .run(&design, &power)
    .expect("valiant runs");
    let v_cost = analyze_overhead(&valiant.masked.netlist, &lib, 32, 1).expect("overhead analysis");

    // POLARIS at half VALIANT's gate budget (Table IV setting).
    let budget = (valiant.masked_gates.len() / 2).max(1);
    let ranked = rank_gates(
        &design,
        trained.model(),
        Some(trained.rules()),
        trained.extractor(),
    )
    .expect("ranking runs");
    let selected: Vec<_> = ranked.iter().take(budget).map(|(id, _)| *id).collect();
    let masked = apply_masking(&design, &selected, MaskingStyle::Trichina).expect("masking");
    let p_cost = analyze_overhead(&masked.netlist, &lib, 32, 1).expect("overhead analysis");

    assert!(
        p_cost.area_um2 < v_cost.area_um2,
        "half the gates must cost less area: {} vs {}",
        p_cost.area_um2,
        v_cost.area_um2
    );
    assert!(p_cost.power_mw < v_cost.power_mw);
}

#[test]
fn model_ranking_beats_random_selection() {
    // The learned ranking should pick gates whose masking reduces more
    // leakage than a random selection of the same size.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let power = PowerModel::default();
    let trained = trained();
    let (design, _) = decompose(&generators::md5(1, 7)).expect("valid design");
    let campaign = CampaignConfig::new(250, 250, 5);
    let before = polaris_tvla::assess(&design, &power, &campaign)
        .expect("assessment")
        .summarize(&design);

    let maskable: Vec<_> = design
        .cell_ids()
        .into_iter()
        .filter(|&id| design.gate(id).fanin().len() <= 2)
        .collect();
    let budget = maskable.len() / 5;

    let ranked = rank_gates(
        &design,
        trained.model(),
        Some(trained.rules()),
        trained.extractor(),
    )
    .expect("ranking runs");
    let model_pick: Vec<_> = ranked.iter().take(budget).map(|(id, _)| *id).collect();
    let masked = apply_masking(&design, &model_pick, MaskingStyle::Trichina).expect("masking");
    let (after_model, _) = assess_grouped(
        &design,
        &masked,
        &power,
        &campaign,
        Parallelism::sequential(),
    )
    .expect("assessment");
    let model_red = after_model.reduction_pct_from(&before);

    // Average of three random picks.
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut random_red = 0.0;
    for _ in 0..3 {
        let mut pool = maskable.clone();
        pool.shuffle(&mut rng);
        let pick: Vec<_> = pool.into_iter().take(budget).collect();
        let masked = apply_masking(&design, &pick, MaskingStyle::Trichina).expect("masking");
        let (after, _) = assess_grouped(
            &design,
            &masked,
            &power,
            &campaign,
            Parallelism::sequential(),
        )
        .expect("assessment");
        random_red += after.reduction_pct_from(&before) / 3.0;
    }

    assert!(
        model_red > random_red - 3.0,
        "learned ranking ({model_red:.1}%) should not lose to random ({random_red:.1}%)"
    );
}
