//! Runner plumbing: configuration, case errors, and deterministic RNG
//! derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (only `cases` is honored by the shim).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure — the whole test fails.
    Fail(String),
    /// `prop_assume!` rejection — the case is discarded and re-drawn.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Derives the deterministic RNG for case `case` of the named test.
///
/// FNV-1a over the test's fully qualified name, mixed with the case index,
/// so every test draws an independent but fixed stream.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
