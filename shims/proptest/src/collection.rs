//! Collection strategies (mirrors `proptest::collection`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Length specifications accepted by [`vec`]: an exact `usize`, `lo..hi`,
/// or `lo..=hi`.
pub trait SizeRange {
    /// Inclusive lower bound and exclusive upper bound.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy producing `Vec`s of values drawn from `elem`.
pub struct VecStrategy<S> {
    elem: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// `vec(strategy, len)` — a vector of `len` (or a length drawn from a
/// range) elements.
pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    assert!(hi > lo, "empty size range for collection::vec");
    VecStrategy { elem, lo, hi }
}
