//! Sampling strategies (mirrors `proptest::sample`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;

/// Strategy drawing one of a fixed set of options (see [`select`]).
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// Uniformly selects one of `options` per case.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(
        !options.is_empty(),
        "sample::select needs at least one option"
    );
    Select { options }
}

/// A length-agnostic index: generated once, projected onto any non-empty
/// collection with [`Index::index`].
#[derive(Clone, Copy, Debug)]
pub struct Index(u64);

impl Index {
    /// This index projected onto a collection of length `len` (> 0).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        Index(rng.gen())
    }
}
