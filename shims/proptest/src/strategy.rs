//! The [`Strategy`] trait and basic combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Keeps drawing until `f` accepts the value (bounded; mirrors
    /// `prop_filter` without shrinking).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1024 consecutive draws: {}",
            self.whence
        )
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Strategy producing one fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
