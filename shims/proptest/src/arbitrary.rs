//! `any::<T>()` and the [`Arbitrary`] sources behind it.

use core::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical full-range generation strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for f64 {
    /// Uniform in `[-1e6, 1e6]` — a bounded, NaN-free stand-in for real
    /// proptest's full-range floats, adequate for numeric property tests.
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1e6..1e6)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1e6f32..1e6)
    }
}

/// The canonical strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
