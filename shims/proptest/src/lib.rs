//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! suites use: the [`proptest!`] macro with `#![proptest_config(..)]`,
//! [`strategy::Strategy`] with `prop_map`, `any::<T>()`, integer/float
//! range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::sample::{select, Index}`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Semantics differ from real proptest in one deliberate way: cases are
//! drawn from a **fixed deterministic stream** (seeded from the test's
//! module path and name), and failing inputs are **not shrunk** — the
//! failing case index and assertion message are reported instead. This
//! keeps the suites byte-for-byte reproducible across runs and platforms,
//! which the workspace's tier-1 gate relies on.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of `proptest::prop` (`prop::collection`, `prop::sample`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub use arbitrary::any;

/// Defines deterministic property tests over strategy-drawn inputs.
///
/// Supported grammar (a subset of real proptest's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn name(x in strategy, ys in other_strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($tail:tt)*) => {
        $crate::__proptest_cases!($cfg; $($tail)*);
    };
    ($($tail:tt)*) => {
        $crate::__proptest_cases!($crate::test_runner::ProptestConfig::default(); $($tail)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($tail:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut executed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while executed < cfg.cases {
                assert!(
                    rejected < cfg.cases.saturating_mul(16).max(256),
                    "proptest: too many rejected cases ({rejected}) in {}",
                    stringify!($name),
                );
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                case += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => rejected += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest `{}` failed at deterministic case {}: {}",
                        stringify!($name),
                        case - 1,
                        msg
                    ),
                }
            }
        }
        $crate::__proptest_cases!($cfg; $($tail)*);
    };
}

/// Fails the current case with an assertion message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion that fails the current case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: `{:?}`\n right: `{:?}`",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Inequality assertion that fails the current case with both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` != `{}`\n  both: `{:?}`",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Discards the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}
