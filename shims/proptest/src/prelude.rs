//! Everything a property-test file needs (mirrors `proptest::prelude`).

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::prop;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
