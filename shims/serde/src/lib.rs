//! Offline stand-in for `serde`.
//!
//! The workspace only needs the `Serialize`/`Deserialize` derives to
//! compile (the actual persistence format in `polaris::persist` is a
//! hand-rolled line-oriented text format). This shim provides marker
//! traits and no-op derive macros so those derives type-check without
//! network access. Swap in real serde by replacing the `[patch]`-free
//! path dependency in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
