//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function`, `iter`, `iter_batched`, throughput annotation — with a
//! simple wall-clock harness: a short warm-up, then `sample_size` timed
//! samples, reporting the median per-iteration time (and throughput when
//! annotated). No statistics, plots, or baselines; results print to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched inputs are sized (accepted, ignored by this shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last run, for reporting.
    median: Duration,
}

impl Bencher {
    fn run_samples(&mut self, mut one_sample: impl FnMut() -> Duration) {
        // Warm-up: one untimed sample.
        let _ = one_sample();
        let mut times: Vec<Duration> = (0..self.samples).map(|_| one_sample()).collect();
        times.sort_unstable();
        self.median = times[times.len() / 2];
    }

    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.run_samples(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.run_samples(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            format!("  ({:.3} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench: {name:<55} median {median:>12.3?}{rate}");
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            median: Duration::ZERO,
        };
        f(&mut b);
        report(&name.into(), b.median, None);
        self
    }
}

/// A named collection of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            median: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.into()),
            b.median,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmarks (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); nothing to parse.
            $($group();)+
        }
    };
}
