//! Offline stand-in for `serde_derive`.
//!
//! Emits empty marker-trait impls (`impl serde::Serialize for T {}`), which
//! is all the serde shim's traits require. `syn`/`quote` are unavailable
//! offline, so the type name is recovered by scanning the raw token stream
//! for the ident following `struct`/`enum`/`union`.
//!
//! Limitations (sufficient for this workspace): no generic parameters, and
//! `#[serde(...)]` field/variant attributes are accepted but ignored.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde shim derive: could not find a struct/enum name in the input")
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
