//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator (the stand-in for `rand::rngs::StdRng`).
///
/// Seeded from a single `u64` via SplitMix64, matching the reference
/// recommendation for initializing xoshiro state.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(11);
        let ones = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4000..6000).contains(&ones), "ones = {ones}");
    }
}
