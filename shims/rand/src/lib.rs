//! Minimal, deterministic, offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this crate vendors the
//! exact API subset the workspace uses:
//!
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`
//! * [`SeedableRng`] — `seed_from_u64`
//! * [`rngs::StdRng`] — xoshiro256++ seeded via SplitMix64
//! * [`seq::SliceRandom`] — `shuffle`, `choose`
//!
//! Streams are deterministic for a given seed and stable across runs and
//! platforms, which is exactly what the test suites rely on. The generator
//! is *not* cryptographically secure — it only drives simulations and
//! sampling in tests and benchmarks.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from an `RngCore` (the `Standard` distribution).
pub trait SampleStandard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl SampleStandard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl SampleStandard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges drawable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A value drawn from the standard (uniform) distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
