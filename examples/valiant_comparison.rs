//! Head-to-head on one design: POLARIS vs the VALIANT baseline.
//!
//! Shows the paper's core claims in miniature: comparable (or better)
//! leakage reduction, far less runtime (no TVLA in the mitigation loop),
//! and lower overhead at matched protection.
//!
//! ```sh
//! cargo run --release --example valiant_comparison [design]
//! ```

use std::time::Instant;

use polaris::config::PolarisConfig;
use polaris::masking_flow::{assess_grouped, rank_gates};
use polaris::pipeline::PolarisPipeline;
use polaris_masking::{analyze_overhead, apply_masking, CellLibrary, MaskingStyle};
use polaris_netlist::generators;
use polaris_netlist::transform::decompose;
use polaris_sim::{CampaignConfig, Parallelism, PowerModel};
use polaris_valiant::{ValiantConfig, ValiantFlow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design_name = std::env::args().nth(1).unwrap_or_else(|| "voter".into());
    let Some(design) = generators::by_name(&design_name, 1, 7) else {
        eprintln!(
            "unknown design {design_name}; pick one of {:?}",
            generators::EVALUATION_NAMES
        );
        std::process::exit(2);
    };
    let power = PowerModel::default();
    let lib = CellLibrary::default();
    let traces = 300usize;

    let (norm, _) = decompose(&design)?;
    let cycles = if norm.is_combinational() { 1 } else { 3 };
    let campaign = CampaignConfig::new(traces, traces, 7).with_cycles(cycles);
    let before = polaris_tvla::assess(&norm, &power, &campaign)?.summarize(&norm);
    let base_cost = analyze_overhead(&norm, &lib, 64, 1)?;
    println!(
        "design `{design_name}`: {} cells, mean |t| = {:.2}, {} leaky cells",
        before.cells, before.mean_abs_t, before.leaky_cells
    );

    // --- VALIANT ---
    println!("\nrunning VALIANT (TVLA in the loop)…");
    let valiant = ValiantFlow::new(ValiantConfig {
        campaign: campaign.clone(),
        max_iterations: 3,
        ..Default::default()
    })
    .run(&norm, &power)?;
    let v_cost = analyze_overhead(&valiant.masked.netlist, &lib, 64, 1)?;
    println!(
        "  {} TVLA campaigns, {} gates masked, reduction {:.1}%, {:.2}s, area x{:.2}",
        valiant.tvla_runs,
        valiant.masked_gates.len(),
        valiant.reduction_pct(),
        valiant.runtime_s,
        v_cost.area_um2 / base_cost.area_um2
    );

    // --- POLARIS ---
    println!("\ntraining POLARIS (once, reusable across designs)…");
    let config = PolarisConfig {
        msize: 25,
        iterations: 6,
        max_traces: traces,
        ..PolarisConfig::default()
    };
    let trained = PolarisPipeline::new(config).train(&generators::training_suite(1, 7), &power)?;

    println!("running POLARIS mitigation (no TVLA)…");
    let t0 = Instant::now();
    let ranked = rank_gates(
        &norm,
        trained.model(),
        Some(trained.rules()),
        trained.extractor(),
    )?;
    let msize = ((before.leaky_cells as f64) * 0.5).round() as usize;
    let selected: Vec<_> = ranked
        .iter()
        .take(msize.max(1))
        .map(|(id, _)| *id)
        .collect();
    let masked = apply_masking(&norm, &selected, MaskingStyle::Trichina)?;
    let polaris_time = t0.elapsed().as_secs_f64();
    let (after, _) = assess_grouped(&norm, &masked, &power, &campaign, Parallelism::auto())?;
    let p_cost = analyze_overhead(&masked.netlist, &lib, 64, 1)?;
    println!(
        "  {} gates masked (50% of leaky), reduction {:.1}%, {:.3}s, area x{:.2}",
        selected.len(),
        after.reduction_pct_from(&before),
        polaris_time,
        p_cost.area_um2 / base_cost.area_um2
    );

    println!(
        "\nspeedup: {:.1}x   |   POLARIS masked {:.0}% as many gates as VALIANT",
        valiant.runtime_s / polaris_time.max(1e-9),
        100.0 * selected.len() as f64 / valiant.masked_gates.len().max(1) as f64
    );
    Ok(())
}
