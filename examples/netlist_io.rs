//! Working with textual netlists: parse, inspect, transform, write.
//!
//! Shows the substrate workflow for users bringing their own gate-level
//! designs: read the structural-Verilog subset, normalize it, assess
//! leakage, mask it, and write the protected netlist back out.
//!
//! ```sh
//! cargo run --release --example netlist_io
//! ```

use polaris_masking::{apply_masking, MaskingStyle};
use polaris_netlist::transform::{decompose, sweep_dead};
use polaris_netlist::{parse_netlist, write_netlist};
use polaris_sim::{CampaignConfig, PowerModel, Simulator};

const DESIGN: &str = "
// a tiny keyed comparator: flag = (data ^ key) == 0
module keycmp (d0, d1, d2, d3, k0, k1, k2, k3, flag);
  input d0, d1, d2, d3;
  input k0, k1, k2, k3;
  output flag;
  xor x0 (m0, d0, k0);
  xor x1 (m1, d1, k1);
  xor x2 (m2, d2, k2);
  xor x3 (m3, d3, k3);
  nor n0 (z0, m0, m1);
  nor n1 (z1, m2, m3);
  and a0 (flag, z0, z1);
endmodule";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse and validate.
    let design = parse_netlist(DESIGN)?;
    let stats = design.stats();
    println!(
        "parsed `{}`: {} gates ({} cells), {} inputs, {} outputs",
        design.name(),
        stats.total,
        stats.cells,
        stats.data_inputs,
        stats.outputs
    );

    // Functional check via the simulator: flag is 1 iff data == key.
    let sim = Simulator::new(&design)?;
    let outs = sim.eval_bool(&[true, false, true, false, true, false, true, false], &[])?;
    assert!(outs[0], "equal data/key must raise the flag");
    let outs = sim.eval_bool(&[true, false, true, false, false, false, true, false], &[])?;
    assert!(!outs[0], "different data/key must clear the flag");
    println!("functional check passed");

    // Normalize (n-ary → 2-input, mux-free) and sweep dead logic.
    let (normalized, _) = decompose(&design)?;
    let (clean, _) = sweep_dead(&normalized)?;
    println!("normalized to {} cells", clean.stats().cells);

    // Assess, mask everything, re-assess.
    let power = PowerModel::default();
    let campaign = CampaignConfig::new(1000, 1000, 5);
    let before = polaris_tvla::assess(&clean, &power, &campaign)?.summarize(&clean);
    let masked = apply_masking(&clean, &clean.cell_ids(), MaskingStyle::Trichina)?;
    let after_map = polaris_tvla::assess(&masked.netlist, &power, &campaign)?;
    let after = after_map.summarize(&masked.netlist);
    println!(
        "mean |t|: {:.2} (unprotected) -> {:.2} (masked, {} fresh mask bits)",
        before.mean_abs_t, after.mean_abs_t, masked.added_mask_bits
    );

    // Write the protected design back to text.
    let text = write_netlist(&masked.netlist);
    println!(
        "\nprotected netlist ({} lines); first lines:\n",
        text.lines().count()
    );
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    // The emitted text is itself parseable.
    let reparsed = parse_netlist(&text)?;
    assert_eq!(
        reparsed.mask_inputs().len(),
        masked.netlist.mask_inputs().len()
    );
    println!("\nround-trip parse OK");
    Ok(())
}
