//! Protecting a cipher S-box — the canonical power side-channel scenario.
//!
//! An attacker watching the power rail of an unprotected S-box can classify
//! its inputs (this is what DPA exploits). This example builds a keyed
//! 4-bit S-box stage, shows it fails TVLA, protects it three ways (POLARIS
//! selective masking, full Trichina masking, full DOM masking) and compares
//! leakage and cost.
//!
//! ```sh
//! cargo run --release --example sbox_protection
//! ```

use polaris::config::PolarisConfig;
use polaris::pipeline::{MaskBudget, PolarisPipeline};
use polaris_masking::{analyze_overhead, apply_masking, CellLibrary, MaskingStyle};
use polaris_netlist::transform::decompose;
use polaris_netlist::{generators::blocks, GateId, Netlist};
use polaris_sim::{CampaignConfig, PowerModel};

/// One keyed substitution stage: out = SBOX(data ⊕ key).
fn keyed_sbox() -> Netlist {
    let mut n = Netlist::new("keyed_sbox");
    let data: Vec<GateId> = (0..4).map(|i| n.add_input(format!("d{i}"))).collect();
    let key: Vec<GateId> = (0..4).map(|i| n.add_input(format!("k{i}"))).collect();
    let keyed = blocks::xor_bus(&mut n, "kx", &data, &key);
    // PRESENT-like 4-bit S-box table.
    let table: Vec<u16> = [0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2]
        .map(|v| v as u16)
        .to_vec();
    let out = blocks::sbox(&mut n, "sb", &keyed, &table, 4);
    for (i, o) in out.iter().enumerate() {
        n.add_output(format!("s{i}"), *o).expect("valid output");
    }
    n
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = PowerModel::default();
    let lib = CellLibrary::default();
    let design = keyed_sbox();
    let (norm, _) = decompose(&design)?;
    let campaign = CampaignConfig::new(1500, 1500, 21);

    // Unprotected leakage.
    let before = polaris_tvla::assess(&norm, &power, &campaign)?.summarize(&norm);
    let base_cost = analyze_overhead(&norm, &lib, 64, 1)?;
    println!("unprotected S-box: {} cells", before.cells);
    println!(
        "  mean |t| = {:.2}, max |t| = {:.2}, leaky cells = {} (threshold 4.5)",
        before.mean_abs_t, before.max_abs_t, before.leaky_cells
    );
    assert!(
        before.max_abs_t > 4.5,
        "an unprotected S-box must fail TVLA"
    );

    // POLARIS: train on generic logic, let the model pick the gates.
    println!("\n[1] POLARIS selective masking (50% of leaky gates)");
    let config = PolarisConfig {
        msize: 20,
        iterations: 5,
        max_traces: 400,
        ..PolarisConfig::default()
    };
    let trained = PolarisPipeline::new(config)
        .train(&polaris_netlist::generators::training_suite(1, 7), &power)?;
    let report = trained.mask_design(&design, &power, MaskBudget::LeakyFraction(0.5))?;
    let polaris_cost = analyze_overhead(&report.masked.netlist, &lib, 64, 1)?;
    println!(
        "  masked {} gates: mean |t| {:.2} -> {:.2} ({:.1}% reduction), area x{:.2}",
        report.masked_gates.len(),
        report.before.mean_abs_t,
        report.after.mean_abs_t,
        report.reduction_pct(),
        polaris_cost.area_um2 / base_cost.area_um2,
    );

    // Full Trichina masking: maximum protection, maximum cost.
    println!("\n[2] full Trichina masking (every cell)");
    let all = norm.cell_ids();
    let trichina = apply_masking(&norm, &all, MaskingStyle::Trichina)?;
    let after_t = polaris_tvla::assess(&trichina.netlist, &power, &campaign)?;
    let t_cells = trichina.netlist.cell_ids();
    let t_mean = t_cells.iter().map(|&id| after_t.abs_t(id)).sum::<f64>() / t_cells.len() as f64;
    let t_cost = analyze_overhead(&trichina.netlist, &lib, 64, 1)?;
    println!(
        "  mean |t| over masked netlist cells = {:.2}, area x{:.2}, +{} mask bits",
        t_mean,
        t_cost.area_um2 / base_cost.area_um2,
        trichina.added_mask_bits
    );

    // Full DOM masking: registers on cross terms (sequential).
    println!("\n[3] full DOM masking (register stage on cross-domain terms)");
    let dom = apply_masking(&norm, &all, MaskingStyle::Dom)?;
    let dom_campaign = CampaignConfig::new(1500, 1500, 22).with_cycles(4);
    let after_d = polaris_tvla::assess(&dom.netlist, &power, &dom_campaign)?;
    let d_cells = dom.netlist.cell_ids();
    let d_mean = d_cells.iter().map(|&id| after_d.abs_t(id)).sum::<f64>() / d_cells.len() as f64;
    let d_cost = analyze_overhead(&dom.netlist, &lib, 64, 1)?;
    println!(
        "  mean |t| = {:.2}, area x{:.2}, flops added = {}",
        d_mean,
        d_cost.area_um2 / base_cost.area_um2,
        dom.netlist.stats().flops
    );

    println!("\nsummary: POLARIS reaches most of the protection at a fraction of the cost.");
    Ok(())
}
