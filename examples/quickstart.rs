//! Quickstart: train POLARIS on small designs and protect an unseen one.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use polaris::config::PolarisConfig;
use polaris::pipeline::{MaskBudget, PolarisPipeline};
use polaris_netlist::generators;
use polaris_sim::PowerModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A power model and a laptop-sized configuration (L = 7, θr = 0.7 as
    //    in the paper; fewer traces/iterations than the published profile).
    let power = PowerModel::default();
    let config = PolarisConfig {
        msize: 25,
        iterations: 6,
        max_traces: 300,
        ..PolarisConfig::default()
    };

    // 2. Train on the ISCAS-85-like suite: POLARIS generates its own
    //    labelled data by masking random gate batches and measuring the
    //    leakage reduction with TVLA (Algorithm 1).
    println!("training POLARIS on the ISCAS-85-like suite…");
    let training = generators::training_suite(1, 7);
    let trained = PolarisPipeline::new(config).train(&training, &power)?;
    let (bad, good) = trained.dataset().class_counts();
    println!(
        "cognition dataset: {} samples ({good} good masks, {bad} bad masks)",
        trained.dataset().len()
    );

    // 3. Protect an unseen design: score every gate structurally, mask the
    //    top candidates (Algorithm 2) — no TVLA in the mitigation path.
    let target = generators::des3(1, 99);
    println!("\nprotecting unseen design `{}`…", target.name());
    let report = trained.mask_design(&target, &power, MaskBudget::LeakyFraction(1.0))?;

    println!("gates masked:        {}", report.masked_gates.len());
    println!(
        "leakage (mean |t|):  {:.2} -> {:.2}",
        report.before.mean_abs_t, report.after.mean_abs_t
    );
    println!(
        "leaky cells (>4.5):  {} -> {}",
        report.before.leaky_cells, report.after.leaky_cells
    );
    println!("total reduction:     {:.1}%", report.reduction_pct());
    println!(
        "mitigation path:     {:.3}s (TVLA-free; reporting TVLA took {:.3}s)",
        report.mitigation_time_s, report.assessment_time_s
    );

    // 4. The model is explainable: print the strongest mined rule.
    if let Some(rule) = trained.rules().rules().first() {
        println!("\nstrongest mined rule:\n  {}", rule.render());
    }
    Ok(())
}
