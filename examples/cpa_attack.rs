//! Key recovery by Correlation Power Analysis — and what masking buys.
//!
//! Plays the adversary: attacks a keyed PRESENT-style S-box with CPA,
//! recovering the 4-bit key from power traces alone, then repeats the
//! attack against the same design protected by POLARIS-style Trichina
//! masking and measures how far the correlation (and thus the attack)
//! degrades.
//!
//! ```sh
//! cargo run --release --example cpa_attack
//! ```

use polaris_masking::{apply_masking, MaskingStyle};
use polaris_netlist::transform::decompose;
use polaris_netlist::{generators::blocks, GateId, GateKind, Netlist};
use polaris_sim::PowerModel;
use polaris_tvla::cpa::{run_cpa, CpaConfig};

const PRESENT_SBOX: [u16; 16] = [0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2];

fn keyed_sbox() -> Netlist {
    let mut n = Netlist::new("keyed_sbox");
    let data: Vec<GateId> = (0..4).map(|i| n.add_input(format!("d{i}"))).collect();
    let key: Vec<GateId> = (0..4).map(|i| n.add_input(format!("k{i}"))).collect();
    let keyed: Vec<GateId> = data
        .iter()
        .zip(&key)
        .enumerate()
        .map(|(i, (&d, &k))| {
            n.add_gate(GateKind::Xor, format!("kx{i}"), &[d, k])
                .expect("valid")
        })
        .collect();
    let out = blocks::sbox(&mut n, "sb", &keyed, &PRESENT_SBOX, 4);
    for (i, o) in out.iter().enumerate() {
        n.add_output(format!("s{i}"), *o).expect("valid");
    }
    n
}

/// Hamming-distance leakage model against the all-zero reference state.
fn predictor(pt: u32, guess: u32) -> f64 {
    let x = (pt ^ guess) as usize & 0xF;
    f64::from((PRESENT_SBOX[0] ^ PRESENT_SBOX[x]).count_ones() + (x as u32).count_ones())
}

fn bar(v: f64, scale: f64) -> String {
    "█".repeat(((v / scale) * 40.0).round() as usize)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let secret_key = 0xB;
    let model = PowerModel::default().with_noise(0.3);
    let config = CpaConfig {
        traces: 2000,
        seed: 42,
        plaintext_bits: vec![0, 1, 2, 3],
        key_bits: vec![4, 5, 6, 7],
        key_value: secret_key,
    };

    // --- attack the unprotected device ---
    let design = keyed_sbox();
    println!(
        "attacking unprotected keyed S-box ({} traces)…\n",
        config.traces
    );
    let outcome = run_cpa(&design, &model, &config, &predictor)?;
    let max = outcome.correlations.iter().cloned().fold(0.0f64, f64::max);
    for (guess, &rho) in outcome.correlations.iter().enumerate() {
        let marker = if guess as u32 == secret_key {
            "  <-- true key"
        } else {
            ""
        };
        println!(
            "  guess {guess:#3x}  |r| = {rho:.3}  {}{marker}",
            bar(rho, max)
        );
    }
    println!(
        "\nbest guess: {:#x} — key {}; margin over runner-up: {:.2}x",
        outcome.best_guess,
        if outcome.key_recovered() {
            "RECOVERED"
        } else {
            "missed"
        },
        outcome.distinguishing_margin()
    );
    assert!(
        outcome.key_recovered(),
        "the unprotected attack must succeed"
    );

    // --- attack the masked device ---
    println!("\nmasking every cell (Trichina) and re-attacking…\n");
    let (norm, _) = decompose(&design)?;
    let masked = apply_masking(&norm, &norm.cell_ids(), MaskingStyle::Trichina)?;
    let protected = run_cpa(&masked.netlist, &model, &config, &predictor)?;
    let rho_before = outcome.correlations[secret_key as usize];
    let rho_after = protected.correlations[secret_key as usize];
    println!("  correct-key correlation: {rho_before:.3} -> {rho_after:.3}");
    println!(
        "  attack-cost scaling (~1/r^2): {:.1}x more traces needed",
        (rho_before / rho_after.max(1e-6)).powi(2)
    );
    println!(
        "  key under masking: {}",
        if protected.key_recovered() {
            "still recovered (boundary leakage — raise the order / share the I/O)"
        } else {
            "NOT recovered at this trace budget"
        }
    );
    Ok(())
}
