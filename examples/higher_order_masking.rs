//! The masking-order hierarchy, measured: unprotected vs Trichina (1st
//! order) vs ISW (2nd order) on a keyed AND, under univariate and bivariate
//! TVLA.
//!
//! ```sh
//! cargo run --release --example higher_order_masking
//! ```

use polaris_masking::{apply_masking, MaskingStyle};
use polaris_netlist::{GateKind, Netlist};
use polaris_sim::{campaign::collect_gate_samples, CampaignConfig, PowerModel};
use polaris_tvla::bivariate::bivariate_sweep;
use polaris_tvla::TVLA_THRESHOLD;

fn keyed_and() -> (Netlist, polaris_netlist::GateId) {
    let mut n = Netlist::new("keyed_and");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let g = n.add_gate(GateKind::And, "g", &[a, b]).expect("valid");
    n.add_output("y", g).expect("valid");
    (n, g)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = PowerModel::default().with_noise(0.05);
    let cfg = CampaignConfig::new(6000, 6000, 33).with_fixed_vector(vec![true, true]);

    println!("target: y = a AND b   (fixed class pins a=b=1)");
    println!("{:-<72}", "");
    println!(
        "{:<22} {:>14} {:>16} {:>12}",
        "variant", "univariate |t|", "bivariate |t|", "mask bits"
    );

    // Unprotected.
    let (plain, g) = keyed_and();
    let uni = polaris_tvla::assess(&plain, &power, &cfg)?;
    println!(
        "{:<22} {:>14.2} {:>16} {:>12}",
        "unprotected",
        uni.abs_t(g),
        "—",
        0
    );

    // Trichina and ISW: report the worst *core* gate / pair (entry sharing
    // and exit re-combination gates excluded — see the masking crate docs).
    for (style, name, entry, exit) in [
        (
            MaskingStyle::Trichina,
            "Trichina (1st order)",
            2usize,
            1usize,
        ),
        (MaskingStyle::IswOrder2, "ISW (2nd order)", 4, 2),
    ] {
        let (plain, g) = keyed_and();
        let masked = apply_masking(&plain, &[g], style)?;
        let gates = masked.gates_for(g);
        let core = &gates[entry..gates.len() - exit];

        let uni = polaris_tvla::assess(&masked.netlist, &power, &cfg)?;
        let worst_uni = core.iter().map(|&c| uni.abs_t(c)).fold(0.0f64, f64::max);

        let samples = collect_gate_samples(&masked.netlist, &power, &cfg)?;
        let sweep = bivariate_sweep(&samples, core)?;
        let worst_bi = sweep.first().map_or(0.0, |(_, _, r)| r.t.abs());

        println!(
            "{:<22} {:>14.2} {:>16.2} {:>12}",
            name, worst_uni, worst_bi, masked.added_mask_bits
        );
    }

    println!("{:-<72}", "");
    println!("threshold: |t| > {TVLA_THRESHOLD} = detectable leakage");
    println!(
        "\nreading: the unprotected gate fails univariate TVLA outright;\n\
         Trichina's core passes univariate but a gate *pair* still leaks\n\
         (bivariate/2nd-order attack); the 3-share ISW core defeats both,\n\
         at ~2.3x the cells and 2.3x the fresh randomness."
    );
    Ok(())
}
