//! Explainability walk-through: SHAP waterfalls and rule extraction.
//!
//! Reproduces the paper's Fig. 3 / Table V workflow on a laptop scale: train
//! the AdaBoost cognition model, explain two individual predictions with
//! exact TreeSHAP, and distill the model into human-readable masking rules.
//!
//! ```sh
//! cargo run --release --example rule_extraction
//! ```

use polaris::config::PolarisConfig;
use polaris::pipeline::PolarisPipeline;
use polaris_ml::Classifier;
use polaris_netlist::generators;
use polaris_sim::PowerModel;
use polaris_xai::RuleMiner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = PowerModel::default();
    let config = PolarisConfig {
        msize: 25,
        iterations: 6,
        max_traces: 300,
        ..PolarisConfig::default()
    };
    println!("training the AdaBoost cognition model…");
    let trained = PolarisPipeline::new(config).train(&generators::training_suite(1, 7), &power)?;
    let data = trained.dataset();
    let model = trained.model();

    // Most confident good-mask and bad-mask samples.
    let (mut hi, mut lo) = (0usize, 0usize);
    for i in 0..data.len() {
        if model.predict_proba(data.row(i)) > model.predict_proba(data.row(hi)) {
            hi = i;
        }
        if model.predict_proba(data.row(i)) < model.predict_proba(data.row(lo)) {
            lo = i;
        }
    }

    println!("\n=== waterfall (a): gate the model wants to mask ===");
    println!("P(good mask) = {:.3}\n", model.predict_proba(data.row(hi)));
    println!(
        "{}",
        trained
            .explainer()
            .waterfall(model, data.row(hi))
            .render(8, 24)
    );

    println!("=== waterfall (b): gate the model refuses to mask ===");
    println!("P(good mask) = {:.3}\n", model.predict_proba(data.row(lo)));
    println!(
        "{}",
        trained
            .explainer()
            .waterfall(model, data.row(lo))
            .render(8, 24)
    );

    // Efficiency axiom, verified live.
    let e = trained.explainer().explain(model, data.row(hi));
    println!(
        "efficiency check: base {:.4} + sum(phi) {:.4} = f(x) {:.4} (gap {:.1e})",
        e.base_value,
        e.values.iter().sum::<f64>(),
        e.fx,
        e.efficiency_gap().abs()
    );

    // Rule distillation at two strictness levels.
    for (label, miner) in [
        ("default miner", RuleMiner::default()),
        (
            "relaxed miner",
            RuleMiner {
                conditions_per_rule: 2,
                min_probability: 0.6,
                min_support: 2,
                max_rules: 6,
            },
        ),
    ] {
        let rules = trained.explainer().mine_rules(model, data, &miner);
        println!("\n=== {label}: {} rules ===", rules.len());
        for (i, r) in rules.rules().iter().enumerate() {
            println!("  {}. {}", i + 1, r.render());
        }
    }
    Ok(())
}
